"""Cluster assembly: configuration, wiring, and failure handling.

A :class:`Cluster` owns the simulator and builds the whole system of
Fig. 13: one metadata node, ``num_data_servers`` nodes each running an IO
service + a DLM service + a storage device, and ``num_clients`` nodes
each running a lock client, a page cache and a ccPFS client.

Stripes (and their identically-named lock resources) are distributed to
data servers by hashing the ``(fid, stripe)`` id — the paper's FID-hash
placement (§IV, artifact appendix).

Recovery (§IV-C2) is orchestrated here: on server recovery the lock
states are gathered from all clients, the extent log is replayed into the
extent cache, and clients redo unacknowledged flush RPCs (their flush
path retries on timeout when ``flush_timeout`` is configured).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Generator, Hashable, List, Optional, Union

from repro.config import DictConfigMixin
from repro.dlm.client import LockClient
from repro.dlm.config import DLMConfig, LivenessConfig, make_dlm_config
from repro.dlm.messages import (
    FailoverAnnounceMsg,
    ReplicaMsg,
    ShardAnnounceMsg,
    ShardLookupMsg,
    ShardTransferMsg,
    WrongShardMsg,
)
from repro.dlm.replication import (
    REPLICA_MSG_BYTES,
    ReplicationConfig,
    StandbySequencer,
)
from repro.dlm.sharding import (
    CompactSnTable,
    DirectoryService,
    ShardConfig,
    ShardMap,
    ShardMapCache,
    stable_hash,
)
from repro.faults import (
    ClientOutage,
    FaultConfig,
    FaultInjector,
    FaultPlan,
    SequencerKill,
    ServerOutage,
)
from repro.net.fabric import Fabric, NetworkConfig, Node
from repro.net.rpc import (
    AdmissionConfig,
    CTRL_MSG_BYTES,
    RetryPolicy,
    one_way,
    rpc_call_retry,
)
from repro.pfs.client import CcpfsClient
from repro.pfs.data_server import DataServer
from repro.pfs.extent_cache import ServerExtentCache
from repro.pfs.extent_log import ExtentLog
from repro.pfs.metadata import FileMeta, MetadataServer
from repro.pfs.page_cache import ClientCache
from repro.sim.core import Simulator
from repro.sim.rng import DeterministicRNG
from repro.storage.device import StorageDevice, WriteCostModel

__all__ = ["ClusterConfig", "Cluster"]

#: Warn-once latch for the ``track_content`` deprecation.
_track_content_warned = False


@dataclass
class ClusterConfig(DictConfigMixin):
    """Everything needed to build a simulated ccPFS deployment.

    Defaults model the paper's testbed (§V-A): 100 Gbps HDR IB, ~213 kOPS
    CaRT lock service, NVMe SSDs around 3 GB/s, 1 MB stripes, 4 KB pages.
    Cache thresholds default to scaled-down values suitable for the
    scaled experiments; set them to the paper's 256 MB / 4 GB for
    full-size runs.
    """

    num_data_servers: int = 1
    num_clients: int = 16
    dlm: Union[str, DLMConfig] = "seqdlm"
    dlm_overrides: dict = field(default_factory=dict)

    # Network (Table I / §V-A).
    net_latency: float = 1.0e-6
    net_bandwidth: float = 12.5e9
    #: Per-message software overhead: the CaRT/Mercury RPC stack costs a
    #: few microseconds per message on top of wire time (a CaRT round
    #: trip is ~10 us) — this is what early revocation saves (§III-A2).
    net_message_overhead: float = 4.0e-6
    dlm_ops: float = 213_000.0
    io_ops: float = 1_000_000.0
    meta_ops: float = 100_000.0

    # Storage.
    device_bandwidth: float = 3.0e9
    device_latency: float = 5.0e-5
    write_cost: WriteCostModel = WriteCostModel.FULL

    # Layout / caching.
    stripe_size: int = 1024 * 1024
    page_size: int = 4096
    #: Effective per-client cache write speed.  Calibrated so 16
    #: clients' aggregate cache bandwidth (~40 GB/s) matches the
    #: cache-bound plateau of the paper's Fig. 4 / Table III.
    mem_bandwidth: float = 2.5e9
    #: **Deprecated** — use ``content_mode`` instead.  Setting this to a
    #: non-None value warns once per process; behaviour is unchanged
    #: (``True`` ≙ ``content_mode="full"``, ``False`` ≙ ``"off"``, and an
    #: explicit ``content_mode`` always wins).
    track_content: Optional[bool] = None
    #: Tri-state payload tracking: ``"full"`` (real bytes end to end),
    #: ``"checksum"`` (rolling CRC32 of every accepted update, no byte
    #: buffers), ``"off"`` (extent/SN bookkeeping only).  ``None`` means
    #: ``"full"`` (or derives from the deprecated ``track_content``
    #: bool).  See :mod:`repro.pfs.content`.
    content_mode: Optional[str] = None
    min_dirty: int = 8 * 1024 * 1024
    max_dirty: int = 128 * 1024 * 1024
    flush_daemon: bool = True
    flush_timeout: Optional[float] = None
    #: Fig. 5 ablation: cap flush-RPC wire bytes (None = full payload).
    flush_wire_cap: Optional[int] = None
    #: §III-B2 conventional partial-page read-modify-write (ccPFS's
    #: sub-page extents make this False by default).
    partial_page_rmw: bool = False

    # Server extent cache / log.
    extent_cache_threshold: int = 256 * 1024
    extent_cache_clean_batch: int = 1024
    extent_cache_clean_interval: float = 0.01
    start_cleaner: bool = True
    extent_log: bool = False

    # Fault injection / resilience (chaos runs; see docs/faults.md).
    #: When set, a seeded :class:`FaultPlan` is attached to the fabric and
    #: the configured outages are driven from the simulator clock.
    faults: Optional[FaultConfig] = None
    #: Seed for the fault plan's RNG sub-stream (defaults to ``seed``).
    fault_seed: Optional[int] = None
    #: When set, every client-side control RPC (lock requests, IO, meta)
    #: retries under this policy and servers dedup by ``req_id``.
    retry: Optional[RetryPolicy] = None
    #: Server-side admission control: bounded request queues on the
    #: services named in ``admission.services`` (see
    #: :class:`~repro.net.rpc.AdmissionConfig`).  Requires ``retry`` —
    #: rejected requests are resent after the server's retry-after hint.
    admission: Optional[AdmissionConfig] = None
    #: Attach a :class:`~repro.dlm.validator.LockValidator` to every lock
    #: server (invariants re-checked after every protocol step).
    validate_locks: bool = False
    #: Client-liveness parameters (lock leases, heartbeats, eviction with
    #: fencing).  When set, every lock server runs the eviction monitor
    #: and every compute client heartbeats; data servers' local lock
    #: clients do not heartbeat and stay lease-exempt.
    liveness: Optional[LivenessConfig] = None
    #: Sequencer high availability (see :mod:`repro.dlm.replication` and
    #: ``docs/ha.md``): one standby per lock server receiving async SN
    #: replication records, a probe-based failure detector, and standby
    #: promotion with client lock re-assertion.  Requires ``retry`` —
    #: failover rides the client retry loop's per-attempt re-routing.
    replication: Optional[ReplicationConfig] = None
    #: Lock-namespace sharding (see :mod:`repro.dlm.sharding` and
    #: ``docs/sharding.md``): the ``(file, extent)`` resource space is
    #: split into ``num_shards`` slices each owned by one lock server,
    #: with a directory service on the metadata node, client-side map
    #: caches fenced by epoch-stamped wrong-shard rejections, and
    #: optional seeded mid-run shard migrations.  ``num_shards > 1``
    #: requires ``retry``; ``num_shards = 1`` (or None) keeps the
    #: classic single-sequencer path byte-identical.
    sharding: Optional[ShardConfig] = None
    #: Conservative partitioned execution (see :mod:`repro.sim.partition`
    #: and docs/simulation.md): shard the cluster's nodes across this many
    #: partitions and advance the run in lookahead-bounded time windows
    #: with cross-partition deliveries exchanged at window barriers.
    #: ``1`` (the default) is the classic serial path, byte-identical by
    #: construction; ``> 1`` must be byte-identical too (golden-tested).
    partitions: int = 1

    seed: int = 0

    def __setattr__(self, name, value):
        if name == "track_content" and value is not None:
            global _track_content_warned
            if not _track_content_warned:
                _track_content_warned = True
                warnings.warn(
                    "ClusterConfig.track_content is deprecated; use "
                    "content_mode='full'/'checksum'/'off' instead",
                    DeprecationWarning, stacklevel=2)
        object.__setattr__(self, name, value)

    def dlm_config(self):
        """Resolve ``dlm`` to its config object: strings go through the
        registry (any name in ``available_dlms()``); config instances —
        :class:`DLMConfig` or a decentralized variant's config — pass
        through unchanged."""
        if isinstance(self.dlm, str):
            return make_dlm_config(self.dlm, **self.dlm_overrides)
        return self.dlm

    def resolved_content_mode(self) -> str:
        from repro.pfs.content import resolve_content_mode
        track = True if self.track_content is None else self.track_content
        return resolve_content_mode(track, self.content_mode)


#: Deterministic placement hash.  The canonical implementation moved to
#: :mod:`repro.dlm.sharding` (shard placement uses the same hash space);
#: the old private name stays for existing callers and tests.
_stable_hash = stable_hash


class Cluster:
    """A fully wired simulated ccPFS deployment."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.sim = Simulator()
        # Anchor the metrics registry on the simulator *before* any
        # component is built, so services/caches can register their
        # histograms at construction time.
        from repro.metrics import MetricsRegistry
        self.sim.metrics = MetricsRegistry()
        self.rng = DeterministicRNG(config.seed, "cluster")
        self.fabric = Fabric(self.sim, NetworkConfig(
            latency=config.net_latency, bandwidth=config.net_bandwidth,
            per_message_overhead=config.net_message_overhead))
        self.dlm_config = config.dlm_config()
        #: True when the configured DLM is a client-side coordination
        #: layer (repro.dlm.mutex) instead of a server-arbitrated lock
        #: table: no lock servers are built, clients coordinate
        #: peer-to-peer, and the validator checks I9 over the message
        #: trace instead of I1–I8 over server state.
        self._decentralized = bool(getattr(self.dlm_config,
                                           "decentralized", False))
        self._coordinator_cls = None
        if self._decentralized:
            from repro.dlm.registry import coordinator_for
            self._coordinator_cls = coordinator_for(self.dlm_config.name)
            if self._coordinator_cls is None:
                raise ValueError(
                    f"decentralized DLM {self.dlm_config.name!r} has no "
                    f"registered coordinator class (register_dlm "
                    f"coordinator_cls)")
            unsupported = [
                ("replication", config.replication),
                ("sharding", config.sharding),
                ("liveness", config.liveness),
            ]
            for feature, value in unsupported:
                if value is not None:
                    raise ValueError(
                        f"ClusterConfig.{feature} is not supported with "
                        f"the decentralized DLM {self.dlm_config.name!r}: "
                        f"it configures the lock-server machinery this "
                        f"family replaces")
            if config.faults is not None and config.faults.sequencer_kills:
                raise ValueError(
                    "FaultConfig.sequencer_kills targets lock servers; "
                    "a decentralized DLM has none")
            if config.faults is not None and config.faults.client_outages:
                raise ValueError(
                    "FaultConfig.client_outages is not supported with a "
                    "decentralized DLM: peer crashes need the lease/"
                    "eviction machinery the lock servers provide")
            if config.partitions > 1:
                raise ValueError(
                    "ClusterConfig.partitions > 1 is not supported with "
                    "a decentralized DLM yet (the partition planner "
                    "co-locates around sequencers)")

        # Fault plan: attach the injector and drive timed outages.
        self.fault_plan: Optional[FaultPlan] = None
        self.fault_injector: Optional[FaultInjector] = None
        if config.faults is not None:
            seed = (config.fault_seed if config.fault_seed is not None
                    else config.seed)
            self.fault_plan = FaultPlan(config.faults, seed=seed)
            if config.faults.message_faults_enabled:
                self.fault_injector = FaultInjector(self.fault_plan)
                self.fault_injector.attach(self.fabric)
        retry = config.retry
        #: Duplicate deliveries (injected or retried) need server-side
        #: req_id suppression to stay safe.
        resilient = retry is not None or config.faults is not None
        admission = config.admission
        if admission is not None and retry is None:
            raise ValueError(
                "ClusterConfig.admission requires ClusterConfig.retry: "
                "admission rejections are resent by the client retry loop")
        if config.replication is not None and retry is None:
            raise ValueError(
                "ClusterConfig.replication requires ClusterConfig.retry: "
                "failover rides the client retry loop's per-attempt "
                "destination re-resolution")
        sharding = config.sharding
        #: True only when sharding is actually on; ``num_shards=1`` keeps
        #: every legacy code path (and its byte-identical snapshots).
        self._sharded = sharding is not None and sharding.num_shards > 1
        if self._sharded and retry is None:
            raise ValueError(
                "ClusterConfig.sharding with num_shards > 1 requires "
                "ClusterConfig.retry: wrong-shard rejections are resent "
                "by the client retry loop")
        if self._sharded:
            for mig in sharding.migrations:
                if mig.to_server >= config.num_data_servers:
                    raise ValueError(
                        f"ShardMigration.to_server {mig.to_server} out of "
                        f"range for num_data_servers="
                        f"{config.num_data_servers}")

        def _adm(service_name: str) -> Optional[AdmissionConfig]:
            if admission is not None and service_name in admission.services:
                return admission
            return None

        # Promotion rebuilds a LockServer mid-run; keep the knobs it needs.
        self._dlm_admission = _adm("dlm")
        self._resilient = resilient

        # Metadata node.
        self.metadata_node = self.fabric.add_node("meta")
        self.metadata = MetadataServer(
            self.metadata_node, ops=config.meta_ops,
            default_stripe_size=config.stripe_size,
            admission=_adm("meta"))
        if resilient:
            self.metadata.service.enable_dedup()

        #: Authoritative shard map + directory service (sharded clusters
        #: only; ``None`` keeps the classic FID-hash lock placement).
        self.shard_map: Optional[ShardMap] = None
        self.shard_directory: Optional[DirectoryService] = None
        #: One dict per committed shard migration (``shard.*`` metrics).
        self.shard_migration_records: List[dict] = []
        #: Per-server set of currently-served shards.  A shard leaves the
        #: old owner's set at drain time and joins the new owner's only
        #: at commit, so during the drain window *nobody* serves it and
        #: every request bounces — safe, and wire-paced (each bounce
        #: costs the client a full RPC round trip).
        self._owned_shards: List[set] = []
        if self._sharded:
            self.shard_map = ShardMap(sharding.num_shards,
                                      config.num_data_servers,
                                      sharding.placement)
            self.shard_directory = DirectoryService(
                self.metadata_node, self.shard_map,
                ops=sharding.directory_ops, dedup=resilient)
            self._owned_shards = [set(self.shard_map.shards_of_server(i))
                                  for i in range(config.num_data_servers)]

        # Data-server nodes: device + IO service + DLM service.
        from repro.dlm.server import LockServer  # local import: layering
        self.server_nodes: List[Node] = []
        self.data_servers: List[DataServer] = []
        self.lock_servers: List[LockServer] = []
        #: Per-index node currently running the stripe's DLM service.
        #: Starts as the data-server node itself; a failover flips one
        #: entry to the promoted standby's node.  All lock routing
        #: (clients, data servers' local lock clients, mSN queries) goes
        #: through :meth:`dlm_node_for` so a flip re-routes everyone.
        self.dlm_nodes: List[Node] = []
        for i in range(config.num_data_servers):
            node = self.fabric.add_node(f"ds{i}")
            device = StorageDevice(self.sim,
                                   bandwidth=config.device_bandwidth,
                                   latency=config.device_latency,
                                   write_cost=config.write_cost)
            ecache = ServerExtentCache(
                self.sim, entry_threshold=config.extent_cache_threshold,
                clean_batch=config.extent_cache_clean_batch,
                clean_interval=config.extent_cache_clean_interval)
            ds = DataServer(node, device, ecache, io_ops=config.io_ops,
                            extent_log=ExtentLog() if config.extent_log
                            else None,
                            content_mode=config.resolved_content_mode(),
                            dedup=resilient, admission=_adm("io"))
            if self._decentralized:
                # No sequencer anywhere: extent-cache cleaning cannot
                # consult an mSN floor (DataServer wired _query_msn to
                # the co-located "dlm" service, which does not exist
                # here), and there is no local lock client to force
                # global syncs through — the clean pass simply keeps
                # entries, bounded by the coordinators' flush-on-release
                # discipline.
                ecache.msn_query_fn = None
                ecache.force_sync_fn = None
                if config.start_cleaner:
                    ecache.start_cleaner()
                self.server_nodes.append(node)
                self.data_servers.append(ds)
                self.dlm_nodes.append(node)
                continue
            ls = LockServer(node, self.dlm_config, ops=config.dlm_ops,
                            retry=retry,
                            rng=self.rng.stream(f"retry/{node.name}"),
                            dedup=resilient,
                            liveness=config.liveness,
                            admission=_adm("dlm"))
            # Fencing: the co-located DLM's incarnation floor also guards
            # the IO path, so a zombie flush dies at the data server.
            ds.fence_fn = ls.fence_floor
            ls.on_evict = (lambda client, reason, reclaimed, idx=i:
                           self._on_client_evicted(idx, client, reason,
                                                   reclaimed))
            if self._sharded:
                ls.shard_guard = self._make_shard_guard(i)
                ls.sn_floors = CompactSnTable()
                ls.frugal_gc = True
            # The data server's forced-sync path needs a local lock
            # client.  It gets a retry policy only on HA or sharded
            # clusters, where "local" stops being true (after a failover,
            # or because the stripe's lock shard lives elsewhere) and its
            # requests must chase the authoritative owner like everyone
            # else's.
            local_remote = config.replication is not None or self._sharded
            ds.local_lock_client = LockClient(
                node, self.dlm_config, server_for=self.dlm_node_for,
                retry=retry if local_remote else None,
                rng=(self.rng.stream(f"retry/{node.name}/dlm-local")
                     if local_remote else None))
            if config.start_cleaner:
                ecache.start_cleaner()
            self.server_nodes.append(node)
            self.data_servers.append(ds)
            self.lock_servers.append(ls)
            self.dlm_nodes.append(node)

        # Sequencer HA: one standby node per lock server, fed by async
        # replication records off the grant path; mSN queries become
        # re-routable RPCs so cache cleaning survives a failover.
        self.standbys: List[StandbySequencer] = []
        #: Deposed lock servers, oldest first (their stats still count).
        self.retired_lock_servers: List[LockServer] = []
        #: One dict per completed failover (see :meth:`failover_report`).
        self.failover_records: List[dict] = []
        #: Post-failover incumbent per record (internal, index-aligned).
        self._failover_servers: List[LockServer] = []
        self.seq_kill_times: Dict[int, float] = {}
        if config.replication is not None:
            for i, snode in enumerate(self.server_nodes):
                sb_node = self.fabric.add_node(f"sb{i}")
                sb = StandbySequencer(sb_node, i, snode, config.replication,
                                      self.promote_standby)
                self.standbys.append(sb)

                def _replicate(rid, sn, _src=snode, _dst=sb_node):
                    one_way(_src, _dst, "dlm_repl", ReplicaMsg(rid, sn),
                            nbytes=REPLICA_MSG_BYTES)

                self.lock_servers[i].replicate_fn = _replicate
                ds = self.data_servers[i]
                ds.dlm_node_fn = self.dlm_node_for
                ds.msn_retry = retry
                ds.msn_rng = self.rng.stream(f"retry/{snode.name}/msn")

        if self._sharded and config.replication is None:
            # Sharded lock ownership breaks the stripe/DLM co-location
            # assumption: a data server's mSN queries must chase the
            # stripe's *lock owner*, which may be any node (and may move
            # mid-run).  The HA block above already wires this when
            # replication is on.
            for snode, ds in zip(self.server_nodes, self.data_servers):
                ds.dlm_node_fn = self.dlm_node_for
                ds.msn_retry = retry
                ds.msn_rng = self.rng.stream(f"retry/{snode.name}/msn")

        # Client nodes.
        self.client_nodes: List[Node] = []
        self.clients: List[CcpfsClient] = []
        self.lock_clients: List[LockClient] = []
        #: Decentralized coordinators (repro.dlm.mutex); empty on
        #: classic clusters.  When set, these *are* the lock_clients —
        #: they implement the same client surface.
        self.mutex_coordinators: list = []
        if self._decentralized:
            # Every coordinator needs the full peer list, so the nodes
            # are created before any coordinator is.
            peer_nodes = [self.fabric.add_node(f"client{i}")
                          for i in range(config.num_clients)]
            for i, node in enumerate(peer_nodes):
                coord = self._coordinator_cls(
                    node, self.dlm_config, peers=peer_nodes, index=i,
                    retry=retry,
                    rng=self.rng.stream(f"mutex/{node.name}"),
                    dedup=resilient)
                cache = ClientCache(
                    self.sim,
                    content_mode=config.resolved_content_mode(),
                    min_dirty=config.min_dirty,
                    max_dirty=config.max_dirty)
                client = CcpfsClient(
                    node, coord, cache,
                    data_server_for=self.server_node_for,
                    metadata_node=self.metadata_node,
                    page_size=config.page_size,
                    mem_bandwidth=config.mem_bandwidth,
                    flush_timeout=config.flush_timeout,
                    start_flush_daemon=config.flush_daemon,
                    flush_wire_cap=config.flush_wire_cap,
                    partial_page_rmw=config.partial_page_rmw,
                    retry=retry,
                    rng=self.rng.stream(f"retry/{node.name}/pfs"))
                self.client_nodes.append(node)
                self.clients.append(client)
                self.lock_clients.append(coord)
                self.mutex_coordinators.append(coord)
        classic_clients = 0 if self._decentralized else config.num_clients
        for i in range(classic_clients):
            node = self.fabric.add_node(f"client{i}")
            server_for = self.dlm_node_for
            shard_cache = None
            if self._sharded:
                # Compute clients route by their own (possibly stale)
                # cached map; wrong-shard bounces trigger a directory
                # refresh via ``shard_refresh_fn``.
                shard_cache = ShardMapCache(self.shard_map)
                server_for = (lambda rid, _c=shard_cache:
                              self.dlm_nodes[_c.owner_index_of(rid)])
            lc = LockClient(node, self.dlm_config,
                            server_for=server_for,
                            retry=retry,
                            rng=self.rng.stream(f"retry/{node.name}"),
                            liveness=config.liveness)
            if shard_cache is not None:
                lc.shard_cache = shard_cache
                lc.shard_refresh_fn = self._make_shard_refresh(node,
                                                               shard_cache)
            if (config.replication is not None
                    and config.replication.clone_requests):

                def _clone(rid, request, _src=node):
                    sb = self.standbys[self.lock_server_index_for(rid)]
                    one_way(_src, sb.node, "dlm_repl", request,
                            nbytes=CTRL_MSG_BYTES)

                lc.clone_fn = _clone
            cache = ClientCache(self.sim,
                                content_mode=config.resolved_content_mode(),
                                min_dirty=config.min_dirty,
                                max_dirty=config.max_dirty)
            client = CcpfsClient(
                node, lc, cache,
                data_server_for=self.server_node_for,
                metadata_node=self.metadata_node,
                page_size=config.page_size,
                mem_bandwidth=config.mem_bandwidth,
                flush_timeout=config.flush_timeout,
                start_flush_daemon=config.flush_daemon,
                flush_wire_cap=config.flush_wire_cap,
                partial_page_rmw=config.partial_page_rmw,
                retry=retry,
                rng=self.rng.stream(f"retry/{node.name}/pfs"))
            self.client_nodes.append(node)
            self.clients.append(client)
            self.lock_clients.append(lc)

        self.validators = []
        if config.validate_locks:
            from repro.dlm.validator import attach_validator
            self.validators = attach_validator(self)

        #: Application processes registered per client index; a killing
        #: client outage interrupts exactly these (the client *library*
        #: processes — heartbeats, retry loops — keep running, which is
        #: what makes the node a fenceable zombie rather than a clean
        #: shutdown).
        self._app_procs: Dict[int, list] = {}

        if self.fault_plan is not None:
            for n, outage in enumerate(config.faults.outages):
                self.sim.spawn(self._outage_driver(outage),
                               name=f"outage-{n}")
            for n, outage in enumerate(config.faults.client_outages):
                self.sim.spawn(self._client_outage_driver(outage),
                               name=f"client-outage-{n}")
            for n, kill in enumerate(config.faults.sequencer_kills):
                self.sim.spawn(self._sequencer_kill_driver(kill),
                               name=f"seq-kill-{n}")

        if self._sharded:
            for n, mig in enumerate(sharding.migrations):
                self.sim.spawn(self._shard_migration_driver(mig),
                               name=f"shard-migration-{n}")

        # Conservative partitioned engine (repro.sim.partition).  Built
        # last so the planner sees every node; ``partitions == 1`` keeps
        # the classic serial path with zero new state on the hot paths.
        if config.partitions < 1:
            raise ValueError(
                f"ClusterConfig.partitions must be >= 1, "
                f"got {config.partitions}")
        self.partition_plan = None
        self.partition_runner = None
        if config.partitions > 1:
            from repro.sim.partition import (PartitionedRunner,
                                             plan_partitions)
            self.partition_plan = plan_partitions(self, config.partitions)
            self.partition_runner = PartitionedRunner(
                self.sim, self.fabric, self.partition_plan)

    # ------------------------------------------------------------- placement
    def server_index_for(self, stripe_key: Hashable) -> int:
        return _stable_hash(stripe_key) % len(self.server_nodes)

    def server_node_for(self, stripe_key: Hashable) -> Node:
        return self.server_nodes[self.server_index_for(stripe_key)]

    def lock_server_index_for(self, resource_id: Hashable) -> int:
        """Index of the lock server *authoritatively* owning the
        resource's lock state: the shard map on sharded clusters, the
        classic FID-hash co-located placement otherwise."""
        if self.shard_map is not None:
            return self.shard_map.owner_index_of(resource_id)
        return self.server_index_for(resource_id)

    def dlm_node_for(self, stripe_key: Hashable) -> Node:
        """Node currently running the stripe's DLM (the promoted standby
        after a failover, the shard owner on a sharded cluster; identical
        to :meth:`server_node_for` otherwise)."""
        return self.dlm_nodes[self.lock_server_index_for(stripe_key)]

    def data_server_for(self, stripe_key: Hashable) -> DataServer:
        return self.data_servers[self.server_index_for(stripe_key)]

    def lock_server_for(self, stripe_key: Hashable):
        return self.lock_servers[self.lock_server_index_for(stripe_key)]

    # ------------------------------------------------------------ conveniences
    def create_file(self, path: str, stripe_count: int = 1,
                    stripe_size: Optional[int] = None) -> FileMeta:
        """Pre-create a file without spending simulated time (test setup)."""
        return self.metadata.create(path, stripe_count,
                                    stripe_size or self.config.stripe_size)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Advance the simulation: the conservative partitioned engine
        when ``config.partitions > 1``, the serial kernel otherwise.
        Workload drivers should prefer this over ``cluster.sim.run`` so
        partitioning applies transparently."""
        if self.partition_runner is not None:
            self.partition_runner.run(until=until, max_events=max_events)
        else:
            self.sim.run(until=until, max_events=max_events)

    def run_until(self, event, max_events: Optional[int] = None) -> None:
        """Run until ``event`` is processed (partition-aware counterpart
        of ``cluster.sim.run_until_event``)."""
        if self.partition_runner is not None:
            self.partition_runner.run_until_event(event,
                                                  max_events=max_events)
        else:
            self.sim.run_until_event(event, max_events=max_events)

    def run_clients(self, coroutines, until: Optional[float] = None,
                    max_events: Optional[int] = None):
        """Spawn one process per client coroutine and run until all of
        them complete (perpetual daemons keep running in the background
        and do not block termination); returns their results in order."""
        procs = [self.sim.spawn(gen) for gen in coroutines]
        if until is not None:
            self.run(until=until)
        else:
            from repro.sim.core import AllOf
            self.run_until(AllOf(self.sim, procs), max_events=max_events)
        for p in procs:
            if not p.triggered:
                raise RuntimeError("client process did not finish")
            if not p.ok:
                raise p.value
        return [p.value for p in procs]

    def read_back(self, path: str) -> bytes:
        """Direct (zero-time) read of a file's durable content from the
        block stores — the test oracle for data-safety checks."""
        meta = self.metadata.lookup(path)
        if meta is None:
            raise FileNotFoundError(path)
        from repro.pfs.layout import StripeLayout
        layout = StripeLayout(meta.stripe_count, meta.stripe_size)
        sizes = {s: self.data_server_for((meta.fid, s)).store.size(
            (meta.fid, s)) for s in range(meta.stripe_count)}
        size = max(meta.size, layout.file_size_from_stripe_sizes(sizes))
        out = bytearray(size)
        for frag in layout.map_extent(0, size):
            key = (meta.fid, frag.stripe)
            ds = self.data_server_for(key)
            out[frag.file_offset:frag.file_offset + frag.length] = \
                ds.store.read(key, frag.local_offset, frag.length)
        return bytes(out)

    # --------------------------------------------------------------- failure
    def _outage_driver(self, outage: ServerOutage) -> Generator:
        """Execute one timed crash/recover from the fault plan."""
        yield float(outage.start)
        name = self.server_nodes[outage.server_index].name
        self.crash_server(outage.server_index)
        self.fault_plan.record(self.sim.now, "crash", name, name, "node",
                               detail=f"down for {outage.duration:g}s")
        yield float(outage.duration)
        yield from self.recover_server(outage.server_index)
        self.fault_plan.record(self.sim.now, "recover", name, name, "node")

    def crash_server(self, index: int) -> None:
        """Fail a data-server node: volatile state (extent cache, lock
        states) is lost; the block store and extent log survive."""
        ds = self.data_servers[index]
        ds.crash()
        if self.lock_servers:
            self.lock_servers[index].reset_state()

    def recover_server(self, index: int) -> Generator:
        """§IV-C2 recovery: replay the extent log, gather lock states from
        all clients, then let clients redo pending flushes (their retry
        timers handle that automatically)."""
        ds = self.data_servers[index]
        node = self.server_nodes[index]
        ds.recover()
        if not self.lock_servers:
            # Decentralized DLM: lock state lives at the clients and
            # survives a data-server crash untouched; only the durable
            # extent-log replay above matters.
            yield 0.0
            return
        server = self.lock_servers[index]
        if ds.extent_log is not None:
            # Durable SNs floor the recovered sequencers: a lock released
            # before the crash is reported by no client, but its SN lives
            # in the log and must never be reissued.
            for key in ds.extent_log.stripe_keys():
                server.bump_next_sn(key, ds.extent_log.max_sn(key) + 1)
        for lc in self.lock_clients:
            if lc.node.failed:
                continue  # a blacked-out client cannot answer the gather
            for rec in lc.gather_lock_states():
                if self._sharded:
                    # Sharded ownership: gather only what this server's
                    # shards cover (migrated resources belong elsewhere).
                    if self.lock_server_for(rec.resource_id) is not server:
                        continue
                elif self.server_node_for(rec.resource_id) is not node:
                    continue
                server._on_recover_lock(rec)
        yield 0.0

    # ----------------------------------------------------- client liveness
    def register_app_process(self, client_index: int, proc) -> None:
        """Register an application process running on client
        ``client_index`` so a killing :class:`ClientOutage` can interrupt
        it (scenario drivers call this for their workers)."""
        self._app_procs.setdefault(client_index, []).append(proc)

    def _client_outage_driver(self, outage: ClientOutage) -> Generator:
        """Execute one timed client blackout (optionally a kill)."""
        yield float(outage.start)
        name = self.client_nodes[outage.client_index].name
        self.crash_client(outage.client_index, kill=outage.kill)
        self.fault_plan.record(
            self.sim.now, "client-kill" if outage.kill else "client-crash",
            name, name, "node", detail=f"blackout {outage.duration:g}s")
        yield float(outage.duration)
        self.heal_client(outage.client_index)
        self.fault_plan.record(self.sim.now, "client-heal", name, name,
                               "node")

    def crash_client(self, index: int, kill: bool = False) -> None:
        """Black out a client node: everything it sends or should receive
        is dropped.  With ``kill``, its registered application processes
        are interrupted too — the app is gone for good, but the client
        library (heartbeats, in-flight retry loops) lives on as a zombie
        until the fence tells it to rejoin."""
        from repro.sim.core import SimulationError
        self.client_nodes[index].failed = True
        if kill:
            for proc in self._app_procs.get(index, ()):
                if proc.triggered:
                    continue
                try:
                    proc.interrupt("killed")
                except SimulationError:
                    pass  # finished or not waiting: nothing to kill

    def heal_client(self, index: int) -> None:
        """End a client blackout.  The node's traffic flows again; if it
        was evicted meanwhile, its first fenced reply triggers the rejoin
        with a fresh incarnation."""
        self.client_nodes[index].failed = False

    def _on_client_evicted(self, server_index: int, client: str,
                           reason: str, reclaimed) -> None:
        """LockServer eviction hook: record the eviction in the fault
        plan (it is part of the run's replayable schedule) and kick the
        extent-cache cleaner — reclaiming the dead client's write locks
        advanced the mSN floor, so pinned entries can drop immediately."""
        name = self.server_nodes[server_index].name
        if self.fault_plan is not None:
            self.fault_plan.record(
                self.sim.now, "evict", name, client, "dlm",
                detail=f"{reason}; reclaimed={len(reclaimed)}")
        self.data_servers[server_index].extent_cache.kick()

    # -------------------------------------------------------------- sharding
    def _make_shard_guard(self, index: int):
        """Server-side ownership guard for lock server ``index``: maps a
        resource id to ``None`` (serve it) or a ready-to-send
        :class:`~repro.dlm.messages.WrongShardMsg` (bounce it).  Checked
        before any resource-addressed request touches lock state, so a
        non-owner can never grant, queue or release anything."""
        smap = self.shard_map
        owned = self._owned_shards[index]

        def guard(resource_id):
            shard = smap.shard_of(resource_id)
            if shard in owned:
                return None
            owner = self.dlm_nodes[smap.owner_index_of_shard(shard)]
            return WrongShardMsg(resource_id, shard, smap.epoch,
                                 owner=owner.name)

        return guard

    def _make_shard_refresh(self, node: Node, cache: ShardMapCache):
        """Client-side refresh-and-retry: after a wrong-shard bounce, ask
        the directory for the current map before the next attempt."""
        rng = self.rng.stream(f"retry/{node.name}/shard")

        def refresh(reject) -> Generator:
            reply = yield from rpc_call_retry(
                node, self.metadata_node, "shard_dir", ShardLookupMsg(),
                policy=self.config.retry, rng=rng)
            cache.update(reply.epoch, reply.owners, source="directory")

        return refresh

    def migrate_shard(self, shard: int, to_index: int) -> Generator:
        """Move ``shard`` to lock server ``to_index``: drain → transfer
        → epoch bump → announce (docs/sharding.md).

        Between drain and commit *nobody* owns the shard: both servers
        bounce its requests with epoch-stamped wrong-shard replies and
        clients refresh-and-retry, each pass costing a full RPC round
        trip (no zero-delay livelock).  The lock-table transfer rides
        ``rpc_call_retry`` + server-side dedup, so it survives the chaos
        matrix's drop/dup/reorder/delay faults.  The commit flips the
        owner of record and bumps the epoch in the same simulated
        instant; the follow-up announce broadcast is best-effort — a
        lost announce only costs a stale client one extra bounce plus a
        directory refresh, never a mis-routed grant (invariant I8)."""
        smap = self.shard_map
        if smap is None:
            raise RuntimeError("cluster is not sharded")
        from_index = smap.owner_index_of_shard(shard)
        if to_index == from_index:
            return
        src = self.lock_servers[from_index]
        to_name = self.dlm_nodes[to_index].name
        started = self.sim.now

        # 1. Drain: the old owner stops serving the shard right now.
        self._owned_shards[from_index].discard(shard)

        def belongs(rid):
            return smap.shard_of(rid) == shard

        def reject(rid):
            # Bounced waiters get the *new* owner as the routing hint.
            return WrongShardMsg(rid, shard, smap.epoch, owner=to_name)

        floors, locks, revokes, bounced = src.extract_shard(belongs, reject)

        # §IV-C2, reused for migration: if the old owner crashed inside
        # the drain window its in-memory table is gone, and shipping the
        # shard floorless would let the new owner reissue SNs (I7) or
        # grant over locks surviving clients still hold (I1/I3).  The
        # durable extent logs and the clients themselves outlive the
        # crash, so merge both into the transfer; with a healthy source
        # this is a no-op because the in-memory floors and lock table
        # always dominate the recovered state.
        floor_map = dict(floors)
        order = [rid for rid, _ in floors]
        for ds in self.data_servers:
            if ds.extent_log is None:
                continue
            for key in ds.extent_log.stripe_keys():
                if not belongs(key):
                    continue
                durable = ds.extent_log.max_sn(key) + 1
                if durable > floor_map.get(key, 0):
                    if key not in floor_map:
                        order.append(key)
                    floor_map[key] = durable
        floors = [(rid, floor_map[rid]) for rid in order]
        known = {(rec.client_name, rec.lock_id) for rec in locks}
        for lc in self.lock_clients:
            if lc.node.failed:
                continue  # a blacked-out client cannot answer the gather
            for rec in lc.gather_lock_states():
                if belongs(rec.resource_id) and \
                        (rec.client_name, rec.lock_id) not in known:
                    locks.append(rec)

        # 2. Transfer: reliable install at the new owner (retry + dedup).
        msg = ShardTransferMsg(shard=shard, locks=tuple(locks),
                               floors=tuple(floors), revokes=tuple(revokes))
        nbytes = (CTRL_MSG_BYTES + 64 * len(locks) + 16 * len(floors)
                  + 32 * len(revokes))
        yield from rpc_call_retry(
            self.metadata_node, self.dlm_nodes[to_index], "dlm", msg,
            nbytes=nbytes, policy=self.config.retry,
            rng=self.rng.stream(f"retry/shard-migration/{shard}"))

        # 3. Commit: owner of record + epoch flip in the same instant.
        epoch = smap.set_owner(shard, to_index)
        self._owned_shards[to_index].add(shard)

        # 4. Announce: best-effort broadcast of the new map.
        _, owners = smap.snapshot()
        ann = ShardAnnounceMsg(epoch=epoch, owners=owners)
        for cn in self.client_nodes:
            one_way(self.metadata_node, cn, "dlm_cb", ann,
                    nbytes=CTRL_MSG_BYTES + 4 * len(owners))
        if self.fault_plan is not None:
            self.fault_plan.record(
                self.sim.now, "shard-migrate", self.metadata_node.name,
                to_name, "dlm",
                detail=f"shard {shard} -> {to_name}; locks={len(locks)}")
        self.shard_migration_records.append({
            "shard": shard,
            "from": self.server_nodes[from_index].name,
            "to": to_name,
            "epoch": epoch,
            "started_at": started,
            "committed_at": self.sim.now,
            "locks_moved": len(locks),
            "floors_moved": len(floors),
            "waiters_bounced": bounced,
        })

    def _shard_migration_driver(self, mig) -> Generator:
        yield float(mig.at)
        yield from self.migrate_shard(mig.shard, mig.to_server)

    def shard_table_sizes(self) -> Dict[int, int]:
        """Live lock-table resource count per shard (``shard.*`` gauges)."""
        sizes = {s: 0 for s in range(self.shard_map.num_shards)}
        for ls in self.lock_servers:
            for rid in ls._resources:
                sizes[self.shard_map.shard_of(rid)] += 1
        return sizes

    # ----------------------------------------------------- sequencer failover
    def _sequencer_kill_driver(self, kill: SequencerKill) -> Generator:
        yield float(kill.at)
        self.kill_sequencer(kill.server_index)

    def kill_sequencer(self, index: int) -> None:
        """Fail-stop the lock server on ``ds<index>`` (the DLM service
        only — the co-located IO service keeps running).  Without
        replication the stripe's locks are simply gone; with it the
        standby's detector notices the silence and promotes."""
        name = self.server_nodes[index].name
        self.seq_kill_times[index] = self.sim.now
        self.lock_servers[index].kill()
        if self.fault_plan is not None:
            self.fault_plan.record(self.sim.now, "sequencer-kill", name,
                                   name, "dlm")

    def promote_standby(self, standby: StandbySequencer) -> None:
        """Failure-detector callback: promote ``standby`` to incumbent.

        SN continuity: the new sequencer's per-resource floor is
        ``max(standby watermark + 1, extent-log floor)`` — at least one
        past every SN the standby acknowledged and every SN durably
        applied, so no SN is ever issued twice across the failover
        (validator invariant I7).  Clients learn of the new incumbent
        via a FailoverAnnounceMsg, re-assert their held locks during the
        hold-off window, and fence any late grant signed by the deposed
        server.
        """
        index = standby.index
        old = self.lock_servers[index]
        standby.promoted_at = self.sim.now
        # Shoot the suspected node first: under message faults the
        # detector can fire on a live-but-unreachable sequencer, and two
        # incumbents issuing SNs would be fatal.  (No-op if truly dead.)
        old.kill()
        node = standby.node
        ds = self.data_servers[index]
        from repro.dlm.server import LockServer  # local import: layering
        new = LockServer(node, self.dlm_config, ops=self.config.dlm_ops,
                         retry=self.config.retry,
                         rng=self.rng.stream(f"retry/{node.name}"),
                         dedup=self._resilient,
                         liveness=self.config.liveness,
                         admission=self._dlm_admission)
        if self._sharded:
            # The promoted incumbent inherits the index's live shard set
            # (the guard closure reads it through the cluster) and gets a
            # fresh frugal floor table — the deposed server's idle floors
            # were volatile; the watermark/extent-log floors below
            # restore everything that provably got out.
            new.shard_guard = self._make_shard_guard(index)
            new.sn_floors = CompactSnTable()
            new.frugal_gc = True
        for rid in sorted(standby.watermarks, key=repr):
            new.bump_next_sn(rid, standby.sn_floor(rid))
        if ds.extent_log is not None:
            for key in ds.extent_log.stripe_keys():
                new.bump_next_sn(key, ds.extent_log.max_sn(key) + 1)
        ds.fence_fn = new.fence_floor
        new.on_evict = (lambda client, reason, reclaimed, idx=index:
                        self._on_client_evicted(idx, client, reason,
                                                reclaimed))
        if self.config.validate_locks:
            from repro.dlm.validator import LockValidator
            self.validators.append(
                LockValidator(new, ledger=getattr(self, "sn_ledger", None),
                              shard_ledger=getattr(self, "shard_ledger",
                                                   None)))
        # Flip the routing table before announcing, so a re-assertion
        # arriving instantly still finds the incumbent authoritative.
        self.retired_lock_servers.append(old)
        self.lock_servers[index] = new
        self.dlm_nodes[index] = node
        new.begin_recovery_holdoff(self.config.replication.reassert_timeout)
        ann = FailoverAnnounceMsg(failed=old.node.name, incumbent=node.name,
                                  epoch=len(self.retired_lock_servers))
        for cn in self.client_nodes:
            one_way(node, cn, "dlm_cb", ann, nbytes=CTRL_MSG_BYTES)
        for sn in self.server_nodes:
            one_way(node, sn, "dlm_cb", ann, nbytes=CTRL_MSG_BYTES)
        if self.fault_plan is not None:
            self.fault_plan.record(self.sim.now, "promote", node.name,
                                   old.node.name, "dlm",
                                   detail=f"standby for ds{index}")
        self.failover_records.append({
            "index": index,
            "failed": old.node.name,
            "incumbent": node.name,
            "killed_at": self.seq_kill_times.get(index),
            "detected_at": standby.suspected_at,
            "promoted_at": standby.promoted_at,
        })
        self._failover_servers.append(new)

    def failover_report(self) -> List[dict]:
        """One dict per completed failover with the MTTR decomposition:
        detection (kill → suspected), promotion (suspected → promoted,
        ~0 since promotion is synchronous in the detector callback),
        time-to-first-grant (promoted → first post-failover grant, which
        includes the re-assertion hold-off), and ``mttr`` (kill → first
        post-failover grant).  Times are None when the corresponding
        event has not happened (e.g. no grant issued yet)."""
        report = []
        for rec, server in zip(self.failover_records,
                               self._failover_servers):
            out = dict(rec)
            out["first_grant_at"] = server.first_grant_at
            out["locks_reasserted"] = server.locks_reasserted
            killed = out["killed_at"]
            detected = out["detected_at"]
            out["detection_time"] = (detected - killed
                                     if killed is not None
                                     and detected is not None else None)
            out["promotion_time"] = (out["promoted_at"] - detected
                                     if detected is not None else None)
            if killed is not None and server.first_grant_at is not None:
                out["time_to_first_grant"] = (server.first_grant_at
                                              - out["promoted_at"])
                out["mttr"] = server.first_grant_at - killed
            else:
                out["time_to_first_grant"] = None
                out["mttr"] = None
            report.append(out)
        return report

    # ------------------------------------------------------------ aggregates
    @property
    def all_lock_servers(self):
        """Active plus retired lock servers — the full population for
        stats aggregation (a deposed sequencer's counters still count)."""
        return self.lock_servers + self.retired_lock_servers
    def total_lock_server_stats(self) -> dict:
        agg: Dict[str, float] = {}
        for ls in self.all_lock_servers:
            for k, v in vars(ls.stats).items():
                agg[k] = agg.get(k, 0) + v
        return agg

    def total_device_bytes_written(self) -> int:
        return sum(ds.device.stats.bytes_written for ds in self.data_servers)

    def resilience_counters(self) -> Dict[str, int]:
        """Aggregate fault-resilience counters (retry/watchdog machinery
        from the fault layer plus the lease/eviction counters) for the
        harness report and the ``repro chaos`` summary.

        Delegates to :func:`repro.metrics.collect.resilience_counters`
        (the single counting path shared with ``metrics_snapshot``);
        always returns the full key set, zero-filled, so healthy-run
        reports do not churn against faulty ones.
        """
        from repro.metrics.collect import resilience_counters
        return resilience_counters(self)

    def metrics_snapshot(self):
        """The full catalogued :class:`~repro.metrics.MetricsSnapshot`
        of this cluster, taken at the current simulated time."""
        from repro.metrics.collect import collect_cluster_metrics
        return collect_cluster_metrics(self)

    def liveness_events(self):
        """All lock servers' lease/eviction timelines, merged and
        time-sorted (the ``repro chaos`` eviction timeline)."""
        events = [ev for ls in self.all_lock_servers for ev in ls.liveness_log]
        events.sort(key=lambda ev: ev.time)
        return events
