"""Cluster assembly: configuration, wiring, and failure handling.

A :class:`Cluster` owns the simulator and builds the whole system of
Fig. 13: one metadata node, ``num_data_servers`` nodes each running an IO
service + a DLM service + a storage device, and ``num_clients`` nodes
each running a lock client, a page cache and a ccPFS client.

Stripes (and their identically-named lock resources) are distributed to
data servers by hashing the ``(fid, stripe)`` id — the paper's FID-hash
placement (§IV, artifact appendix).

Recovery (§IV-C2) is orchestrated here: on server recovery the lock
states are gathered from all clients, the extent log is replayed into the
extent cache, and clients redo unacknowledged flush RPCs (their flush
path retries on timeout when ``flush_timeout`` is configured).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Generator, Hashable, List, Optional, Union

from repro.config import DictConfigMixin
from repro.dlm.client import LockClient
from repro.dlm.config import DLMConfig, LivenessConfig, make_dlm_config
from repro.dlm.messages import FailoverAnnounceMsg, ReplicaMsg
from repro.dlm.replication import (
    REPLICA_MSG_BYTES,
    ReplicationConfig,
    StandbySequencer,
)
from repro.faults import (
    ClientOutage,
    FaultConfig,
    FaultInjector,
    FaultPlan,
    SequencerKill,
    ServerOutage,
)
from repro.net.fabric import Fabric, NetworkConfig, Node
from repro.net.rpc import AdmissionConfig, CTRL_MSG_BYTES, RetryPolicy, one_way
from repro.pfs.client import CcpfsClient
from repro.pfs.data_server import DataServer
from repro.pfs.extent_cache import ServerExtentCache
from repro.pfs.extent_log import ExtentLog
from repro.pfs.metadata import FileMeta, MetadataServer
from repro.pfs.page_cache import ClientCache
from repro.sim.core import Simulator
from repro.sim.rng import DeterministicRNG
from repro.storage.device import StorageDevice, WriteCostModel

__all__ = ["ClusterConfig", "Cluster"]

#: Warn-once latch for the ``track_content`` deprecation.
_track_content_warned = False


@dataclass
class ClusterConfig(DictConfigMixin):
    """Everything needed to build a simulated ccPFS deployment.

    Defaults model the paper's testbed (§V-A): 100 Gbps HDR IB, ~213 kOPS
    CaRT lock service, NVMe SSDs around 3 GB/s, 1 MB stripes, 4 KB pages.
    Cache thresholds default to scaled-down values suitable for the
    scaled experiments; set them to the paper's 256 MB / 4 GB for
    full-size runs.
    """

    num_data_servers: int = 1
    num_clients: int = 16
    dlm: Union[str, DLMConfig] = "seqdlm"
    dlm_overrides: dict = field(default_factory=dict)

    # Network (Table I / §V-A).
    net_latency: float = 1.0e-6
    net_bandwidth: float = 12.5e9
    #: Per-message software overhead: the CaRT/Mercury RPC stack costs a
    #: few microseconds per message on top of wire time (a CaRT round
    #: trip is ~10 us) — this is what early revocation saves (§III-A2).
    net_message_overhead: float = 4.0e-6
    dlm_ops: float = 213_000.0
    io_ops: float = 1_000_000.0
    meta_ops: float = 100_000.0

    # Storage.
    device_bandwidth: float = 3.0e9
    device_latency: float = 5.0e-5
    write_cost: WriteCostModel = WriteCostModel.FULL

    # Layout / caching.
    stripe_size: int = 1024 * 1024
    page_size: int = 4096
    #: Effective per-client cache write speed.  Calibrated so 16
    #: clients' aggregate cache bandwidth (~40 GB/s) matches the
    #: cache-bound plateau of the paper's Fig. 4 / Table III.
    mem_bandwidth: float = 2.5e9
    #: **Deprecated** — use ``content_mode`` instead.  Setting this to a
    #: non-None value warns once per process; behaviour is unchanged
    #: (``True`` ≙ ``content_mode="full"``, ``False`` ≙ ``"off"``, and an
    #: explicit ``content_mode`` always wins).
    track_content: Optional[bool] = None
    #: Tri-state payload tracking: ``"full"`` (real bytes end to end),
    #: ``"checksum"`` (rolling CRC32 of every accepted update, no byte
    #: buffers), ``"off"`` (extent/SN bookkeeping only).  ``None`` means
    #: ``"full"`` (or derives from the deprecated ``track_content``
    #: bool).  See :mod:`repro.pfs.content`.
    content_mode: Optional[str] = None
    min_dirty: int = 8 * 1024 * 1024
    max_dirty: int = 128 * 1024 * 1024
    flush_daemon: bool = True
    flush_timeout: Optional[float] = None
    #: Fig. 5 ablation: cap flush-RPC wire bytes (None = full payload).
    flush_wire_cap: Optional[int] = None
    #: §III-B2 conventional partial-page read-modify-write (ccPFS's
    #: sub-page extents make this False by default).
    partial_page_rmw: bool = False

    # Server extent cache / log.
    extent_cache_threshold: int = 256 * 1024
    extent_cache_clean_batch: int = 1024
    extent_cache_clean_interval: float = 0.01
    start_cleaner: bool = True
    extent_log: bool = False

    # Fault injection / resilience (chaos runs; see docs/faults.md).
    #: When set, a seeded :class:`FaultPlan` is attached to the fabric and
    #: the configured outages are driven from the simulator clock.
    faults: Optional[FaultConfig] = None
    #: Seed for the fault plan's RNG sub-stream (defaults to ``seed``).
    fault_seed: Optional[int] = None
    #: When set, every client-side control RPC (lock requests, IO, meta)
    #: retries under this policy and servers dedup by ``req_id``.
    retry: Optional[RetryPolicy] = None
    #: Server-side admission control: bounded request queues on the
    #: services named in ``admission.services`` (see
    #: :class:`~repro.net.rpc.AdmissionConfig`).  Requires ``retry`` —
    #: rejected requests are resent after the server's retry-after hint.
    admission: Optional[AdmissionConfig] = None
    #: Attach a :class:`~repro.dlm.validator.LockValidator` to every lock
    #: server (invariants re-checked after every protocol step).
    validate_locks: bool = False
    #: Client-liveness parameters (lock leases, heartbeats, eviction with
    #: fencing).  When set, every lock server runs the eviction monitor
    #: and every compute client heartbeats; data servers' local lock
    #: clients do not heartbeat and stay lease-exempt.
    liveness: Optional[LivenessConfig] = None
    #: Sequencer high availability (see :mod:`repro.dlm.replication` and
    #: ``docs/ha.md``): one standby per lock server receiving async SN
    #: replication records, a probe-based failure detector, and standby
    #: promotion with client lock re-assertion.  Requires ``retry`` —
    #: failover rides the client retry loop's per-attempt re-routing.
    replication: Optional[ReplicationConfig] = None

    seed: int = 0

    def __setattr__(self, name, value):
        if name == "track_content" and value is not None:
            global _track_content_warned
            if not _track_content_warned:
                _track_content_warned = True
                warnings.warn(
                    "ClusterConfig.track_content is deprecated; use "
                    "content_mode='full'/'checksum'/'off' instead",
                    DeprecationWarning, stacklevel=2)
        object.__setattr__(self, name, value)

    def dlm_config(self) -> DLMConfig:
        if isinstance(self.dlm, DLMConfig):
            return self.dlm
        return make_dlm_config(self.dlm, **self.dlm_overrides)

    def resolved_content_mode(self) -> str:
        from repro.pfs.content import resolve_content_mode
        track = True if self.track_content is None else self.track_content
        return resolve_content_mode(track, self.content_mode)


def _stable_hash(key: Hashable) -> int:
    """Deterministic placement hash (Python's str hash is randomized)."""
    h = 0x811C9DC5
    for part in (key if isinstance(key, tuple) else (key,)):
        for b in str(part).encode():
            h = ((h ^ b) * 0x01000193) & 0xFFFFFFFF
    return h


class Cluster:
    """A fully wired simulated ccPFS deployment."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.sim = Simulator()
        # Anchor the metrics registry on the simulator *before* any
        # component is built, so services/caches can register their
        # histograms at construction time.
        from repro.metrics import MetricsRegistry
        self.sim.metrics = MetricsRegistry()
        self.rng = DeterministicRNG(config.seed, "cluster")
        self.fabric = Fabric(self.sim, NetworkConfig(
            latency=config.net_latency, bandwidth=config.net_bandwidth,
            per_message_overhead=config.net_message_overhead))
        self.dlm_config = config.dlm_config()

        # Fault plan: attach the injector and drive timed outages.
        self.fault_plan: Optional[FaultPlan] = None
        self.fault_injector: Optional[FaultInjector] = None
        if config.faults is not None:
            seed = (config.fault_seed if config.fault_seed is not None
                    else config.seed)
            self.fault_plan = FaultPlan(config.faults, seed=seed)
            if config.faults.message_faults_enabled:
                self.fault_injector = FaultInjector(self.fault_plan)
                self.fault_injector.attach(self.fabric)
        retry = config.retry
        #: Duplicate deliveries (injected or retried) need server-side
        #: req_id suppression to stay safe.
        resilient = retry is not None or config.faults is not None
        admission = config.admission
        if admission is not None and retry is None:
            raise ValueError(
                "ClusterConfig.admission requires ClusterConfig.retry: "
                "admission rejections are resent by the client retry loop")
        if config.replication is not None and retry is None:
            raise ValueError(
                "ClusterConfig.replication requires ClusterConfig.retry: "
                "failover rides the client retry loop's per-attempt "
                "destination re-resolution")

        def _adm(service_name: str) -> Optional[AdmissionConfig]:
            if admission is not None and service_name in admission.services:
                return admission
            return None

        # Promotion rebuilds a LockServer mid-run; keep the knobs it needs.
        self._dlm_admission = _adm("dlm")
        self._resilient = resilient

        # Metadata node.
        self.metadata_node = self.fabric.add_node("meta")
        self.metadata = MetadataServer(
            self.metadata_node, ops=config.meta_ops,
            default_stripe_size=config.stripe_size,
            admission=_adm("meta"))
        if resilient:
            self.metadata.service.enable_dedup()

        # Data-server nodes: device + IO service + DLM service.
        from repro.dlm.server import LockServer  # local import: layering
        self.server_nodes: List[Node] = []
        self.data_servers: List[DataServer] = []
        self.lock_servers: List[LockServer] = []
        #: Per-index node currently running the stripe's DLM service.
        #: Starts as the data-server node itself; a failover flips one
        #: entry to the promoted standby's node.  All lock routing
        #: (clients, data servers' local lock clients, mSN queries) goes
        #: through :meth:`dlm_node_for` so a flip re-routes everyone.
        self.dlm_nodes: List[Node] = []
        for i in range(config.num_data_servers):
            node = self.fabric.add_node(f"ds{i}")
            device = StorageDevice(self.sim,
                                   bandwidth=config.device_bandwidth,
                                   latency=config.device_latency,
                                   write_cost=config.write_cost)
            ecache = ServerExtentCache(
                self.sim, entry_threshold=config.extent_cache_threshold,
                clean_batch=config.extent_cache_clean_batch,
                clean_interval=config.extent_cache_clean_interval)
            ds = DataServer(node, device, ecache, io_ops=config.io_ops,
                            extent_log=ExtentLog() if config.extent_log
                            else None,
                            content_mode=config.resolved_content_mode(),
                            dedup=resilient, admission=_adm("io"))
            ls = LockServer(node, self.dlm_config, ops=config.dlm_ops,
                            retry=retry,
                            rng=self.rng.stream(f"retry/{node.name}"),
                            dedup=resilient,
                            liveness=config.liveness,
                            admission=_adm("dlm"))
            # Fencing: the co-located DLM's incarnation floor also guards
            # the IO path, so a zombie flush dies at the data server.
            ds.fence_fn = ls.fence_floor
            ls.on_evict = (lambda client, reason, reclaimed, idx=i:
                           self._on_client_evicted(idx, client, reason,
                                                   reclaimed))
            # The data server's forced-sync path needs a local lock
            # client.  It gets a retry policy only on HA clusters, where
            # "local" stops being true after a failover and its requests
            # must chase the promoted standby like everyone else's.
            ds.local_lock_client = LockClient(
                node, self.dlm_config, server_for=self.dlm_node_for,
                retry=retry if config.replication is not None else None,
                rng=(self.rng.stream(f"retry/{node.name}/dlm-local")
                     if config.replication is not None else None))
            if config.start_cleaner:
                ecache.start_cleaner()
            self.server_nodes.append(node)
            self.data_servers.append(ds)
            self.lock_servers.append(ls)
            self.dlm_nodes.append(node)

        # Sequencer HA: one standby node per lock server, fed by async
        # replication records off the grant path; mSN queries become
        # re-routable RPCs so cache cleaning survives a failover.
        self.standbys: List[StandbySequencer] = []
        #: Deposed lock servers, oldest first (their stats still count).
        self.retired_lock_servers: List[LockServer] = []
        #: One dict per completed failover (see :meth:`failover_report`).
        self.failover_records: List[dict] = []
        #: Post-failover incumbent per record (internal, index-aligned).
        self._failover_servers: List[LockServer] = []
        self.seq_kill_times: Dict[int, float] = {}
        if config.replication is not None:
            for i, snode in enumerate(self.server_nodes):
                sb_node = self.fabric.add_node(f"sb{i}")
                sb = StandbySequencer(sb_node, i, snode, config.replication,
                                      self.promote_standby)
                self.standbys.append(sb)

                def _replicate(rid, sn, _src=snode, _dst=sb_node):
                    one_way(_src, _dst, "dlm_repl", ReplicaMsg(rid, sn),
                            nbytes=REPLICA_MSG_BYTES)

                self.lock_servers[i].replicate_fn = _replicate
                ds = self.data_servers[i]
                ds.dlm_node_fn = self.dlm_node_for
                ds.msn_retry = retry
                ds.msn_rng = self.rng.stream(f"retry/{snode.name}/msn")

        # Client nodes.
        self.client_nodes: List[Node] = []
        self.clients: List[CcpfsClient] = []
        self.lock_clients: List[LockClient] = []
        for i in range(config.num_clients):
            node = self.fabric.add_node(f"client{i}")
            lc = LockClient(node, self.dlm_config,
                            server_for=self.dlm_node_for,
                            retry=retry,
                            rng=self.rng.stream(f"retry/{node.name}"),
                            liveness=config.liveness)
            if (config.replication is not None
                    and config.replication.clone_requests):

                def _clone(rid, request, _src=node):
                    sb = self.standbys[self.server_index_for(rid)]
                    one_way(_src, sb.node, "dlm_repl", request,
                            nbytes=CTRL_MSG_BYTES)

                lc.clone_fn = _clone
            cache = ClientCache(self.sim,
                                content_mode=config.resolved_content_mode(),
                                min_dirty=config.min_dirty,
                                max_dirty=config.max_dirty)
            client = CcpfsClient(
                node, lc, cache,
                data_server_for=self.server_node_for,
                metadata_node=self.metadata_node,
                page_size=config.page_size,
                mem_bandwidth=config.mem_bandwidth,
                flush_timeout=config.flush_timeout,
                start_flush_daemon=config.flush_daemon,
                flush_wire_cap=config.flush_wire_cap,
                partial_page_rmw=config.partial_page_rmw,
                retry=retry,
                rng=self.rng.stream(f"retry/{node.name}/pfs"))
            self.client_nodes.append(node)
            self.clients.append(client)
            self.lock_clients.append(lc)

        self.validators = []
        if config.validate_locks:
            from repro.dlm.validator import attach_validator
            self.validators = attach_validator(self)

        #: Application processes registered per client index; a killing
        #: client outage interrupts exactly these (the client *library*
        #: processes — heartbeats, retry loops — keep running, which is
        #: what makes the node a fenceable zombie rather than a clean
        #: shutdown).
        self._app_procs: Dict[int, list] = {}

        if self.fault_plan is not None:
            for n, outage in enumerate(config.faults.outages):
                self.sim.spawn(self._outage_driver(outage),
                               name=f"outage-{n}")
            for n, outage in enumerate(config.faults.client_outages):
                self.sim.spawn(self._client_outage_driver(outage),
                               name=f"client-outage-{n}")
            for n, kill in enumerate(config.faults.sequencer_kills):
                self.sim.spawn(self._sequencer_kill_driver(kill),
                               name=f"seq-kill-{n}")

    # ------------------------------------------------------------- placement
    def server_index_for(self, stripe_key: Hashable) -> int:
        return _stable_hash(stripe_key) % len(self.server_nodes)

    def server_node_for(self, stripe_key: Hashable) -> Node:
        return self.server_nodes[self.server_index_for(stripe_key)]

    def dlm_node_for(self, stripe_key: Hashable) -> Node:
        """Node currently running the stripe's DLM (the promoted standby
        after a failover; identical to :meth:`server_node_for` before)."""
        return self.dlm_nodes[self.server_index_for(stripe_key)]

    def data_server_for(self, stripe_key: Hashable) -> DataServer:
        return self.data_servers[self.server_index_for(stripe_key)]

    def lock_server_for(self, stripe_key: Hashable):
        return self.lock_servers[self.server_index_for(stripe_key)]

    # ------------------------------------------------------------ conveniences
    def create_file(self, path: str, stripe_count: int = 1,
                    stripe_size: Optional[int] = None) -> FileMeta:
        """Pre-create a file without spending simulated time (test setup)."""
        return self.metadata.create(path, stripe_count,
                                    stripe_size or self.config.stripe_size)

    def run_clients(self, coroutines, until: Optional[float] = None,
                    max_events: Optional[int] = None):
        """Spawn one process per client coroutine and run until all of
        them complete (perpetual daemons keep running in the background
        and do not block termination); returns their results in order."""
        procs = [self.sim.spawn(gen) for gen in coroutines]
        if until is not None:
            self.sim.run(until=until)
        else:
            from repro.sim.core import AllOf
            self.sim.run_until_event(AllOf(self.sim, procs),
                                     max_events=max_events)
        for p in procs:
            if not p.triggered:
                raise RuntimeError("client process did not finish")
            if not p.ok:
                raise p.value
        return [p.value for p in procs]

    def read_back(self, path: str) -> bytes:
        """Direct (zero-time) read of a file's durable content from the
        block stores — the test oracle for data-safety checks."""
        meta = self.metadata.lookup(path)
        if meta is None:
            raise FileNotFoundError(path)
        from repro.pfs.layout import StripeLayout
        layout = StripeLayout(meta.stripe_count, meta.stripe_size)
        sizes = {s: self.data_server_for((meta.fid, s)).store.size(
            (meta.fid, s)) for s in range(meta.stripe_count)}
        size = max(meta.size, layout.file_size_from_stripe_sizes(sizes))
        out = bytearray(size)
        for frag in layout.map_extent(0, size):
            key = (meta.fid, frag.stripe)
            ds = self.data_server_for(key)
            out[frag.file_offset:frag.file_offset + frag.length] = \
                ds.store.read(key, frag.local_offset, frag.length)
        return bytes(out)

    # --------------------------------------------------------------- failure
    def _outage_driver(self, outage: ServerOutage) -> Generator:
        """Execute one timed crash/recover from the fault plan."""
        yield float(outage.start)
        name = self.server_nodes[outage.server_index].name
        self.crash_server(outage.server_index)
        self.fault_plan.record(self.sim.now, "crash", name, name, "node",
                               detail=f"down for {outage.duration:g}s")
        yield float(outage.duration)
        yield from self.recover_server(outage.server_index)
        self.fault_plan.record(self.sim.now, "recover", name, name, "node")

    def crash_server(self, index: int) -> None:
        """Fail a data-server node: volatile state (extent cache, lock
        states) is lost; the block store and extent log survive."""
        ds = self.data_servers[index]
        ds.crash()
        self.lock_servers[index].reset_state()

    def recover_server(self, index: int) -> Generator:
        """§IV-C2 recovery: replay the extent log, gather lock states from
        all clients, then let clients redo pending flushes (their retry
        timers handle that automatically)."""
        ds = self.data_servers[index]
        node = self.server_nodes[index]
        ds.recover()
        server = self.lock_servers[index]
        if ds.extent_log is not None:
            # Durable SNs floor the recovered sequencers: a lock released
            # before the crash is reported by no client, but its SN lives
            # in the log and must never be reissued.
            for key in ds.extent_log.stripe_keys():
                server.bump_next_sn(key, ds.extent_log.max_sn(key) + 1)
        for lc in self.lock_clients:
            if lc.node.failed:
                continue  # a blacked-out client cannot answer the gather
            for rec in lc.gather_lock_states():
                if self.server_node_for(rec.resource_id) is node:
                    server._on_recover_lock(rec)
        yield 0.0

    # ----------------------------------------------------- client liveness
    def register_app_process(self, client_index: int, proc) -> None:
        """Register an application process running on client
        ``client_index`` so a killing :class:`ClientOutage` can interrupt
        it (scenario drivers call this for their workers)."""
        self._app_procs.setdefault(client_index, []).append(proc)

    def _client_outage_driver(self, outage: ClientOutage) -> Generator:
        """Execute one timed client blackout (optionally a kill)."""
        yield float(outage.start)
        name = self.client_nodes[outage.client_index].name
        self.crash_client(outage.client_index, kill=outage.kill)
        self.fault_plan.record(
            self.sim.now, "client-kill" if outage.kill else "client-crash",
            name, name, "node", detail=f"blackout {outage.duration:g}s")
        yield float(outage.duration)
        self.heal_client(outage.client_index)
        self.fault_plan.record(self.sim.now, "client-heal", name, name,
                               "node")

    def crash_client(self, index: int, kill: bool = False) -> None:
        """Black out a client node: everything it sends or should receive
        is dropped.  With ``kill``, its registered application processes
        are interrupted too — the app is gone for good, but the client
        library (heartbeats, in-flight retry loops) lives on as a zombie
        until the fence tells it to rejoin."""
        from repro.sim.core import SimulationError
        self.client_nodes[index].failed = True
        if kill:
            for proc in self._app_procs.get(index, ()):
                if proc.triggered:
                    continue
                try:
                    proc.interrupt("killed")
                except SimulationError:
                    pass  # finished or not waiting: nothing to kill

    def heal_client(self, index: int) -> None:
        """End a client blackout.  The node's traffic flows again; if it
        was evicted meanwhile, its first fenced reply triggers the rejoin
        with a fresh incarnation."""
        self.client_nodes[index].failed = False

    def _on_client_evicted(self, server_index: int, client: str,
                           reason: str, reclaimed) -> None:
        """LockServer eviction hook: record the eviction in the fault
        plan (it is part of the run's replayable schedule) and kick the
        extent-cache cleaner — reclaiming the dead client's write locks
        advanced the mSN floor, so pinned entries can drop immediately."""
        name = self.server_nodes[server_index].name
        if self.fault_plan is not None:
            self.fault_plan.record(
                self.sim.now, "evict", name, client, "dlm",
                detail=f"{reason}; reclaimed={len(reclaimed)}")
        self.data_servers[server_index].extent_cache.kick()

    # ----------------------------------------------------- sequencer failover
    def _sequencer_kill_driver(self, kill: SequencerKill) -> Generator:
        yield float(kill.at)
        self.kill_sequencer(kill.server_index)

    def kill_sequencer(self, index: int) -> None:
        """Fail-stop the lock server on ``ds<index>`` (the DLM service
        only — the co-located IO service keeps running).  Without
        replication the stripe's locks are simply gone; with it the
        standby's detector notices the silence and promotes."""
        name = self.server_nodes[index].name
        self.seq_kill_times[index] = self.sim.now
        self.lock_servers[index].kill()
        if self.fault_plan is not None:
            self.fault_plan.record(self.sim.now, "sequencer-kill", name,
                                   name, "dlm")

    def promote_standby(self, standby: StandbySequencer) -> None:
        """Failure-detector callback: promote ``standby`` to incumbent.

        SN continuity: the new sequencer's per-resource floor is
        ``max(standby watermark + 1, extent-log floor)`` — at least one
        past every SN the standby acknowledged and every SN durably
        applied, so no SN is ever issued twice across the failover
        (validator invariant I7).  Clients learn of the new incumbent
        via a FailoverAnnounceMsg, re-assert their held locks during the
        hold-off window, and fence any late grant signed by the deposed
        server.
        """
        index = standby.index
        old = self.lock_servers[index]
        standby.promoted_at = self.sim.now
        # Shoot the suspected node first: under message faults the
        # detector can fire on a live-but-unreachable sequencer, and two
        # incumbents issuing SNs would be fatal.  (No-op if truly dead.)
        old.kill()
        node = standby.node
        ds = self.data_servers[index]
        from repro.dlm.server import LockServer  # local import: layering
        new = LockServer(node, self.dlm_config, ops=self.config.dlm_ops,
                         retry=self.config.retry,
                         rng=self.rng.stream(f"retry/{node.name}"),
                         dedup=self._resilient,
                         liveness=self.config.liveness,
                         admission=self._dlm_admission)
        for rid in sorted(standby.watermarks, key=repr):
            new.bump_next_sn(rid, standby.sn_floor(rid))
        if ds.extent_log is not None:
            for key in ds.extent_log.stripe_keys():
                new.bump_next_sn(key, ds.extent_log.max_sn(key) + 1)
        ds.fence_fn = new.fence_floor
        new.on_evict = (lambda client, reason, reclaimed, idx=index:
                        self._on_client_evicted(idx, client, reason,
                                                reclaimed))
        if self.config.validate_locks:
            from repro.dlm.validator import LockValidator
            self.validators.append(
                LockValidator(new, ledger=getattr(self, "sn_ledger", None)))
        # Flip the routing table before announcing, so a re-assertion
        # arriving instantly still finds the incumbent authoritative.
        self.retired_lock_servers.append(old)
        self.lock_servers[index] = new
        self.dlm_nodes[index] = node
        new.begin_recovery_holdoff(self.config.replication.reassert_timeout)
        ann = FailoverAnnounceMsg(failed=old.node.name, incumbent=node.name,
                                  epoch=len(self.retired_lock_servers))
        for cn in self.client_nodes:
            one_way(node, cn, "dlm_cb", ann, nbytes=CTRL_MSG_BYTES)
        for sn in self.server_nodes:
            one_way(node, sn, "dlm_cb", ann, nbytes=CTRL_MSG_BYTES)
        if self.fault_plan is not None:
            self.fault_plan.record(self.sim.now, "promote", node.name,
                                   old.node.name, "dlm",
                                   detail=f"standby for ds{index}")
        self.failover_records.append({
            "index": index,
            "failed": old.node.name,
            "incumbent": node.name,
            "killed_at": self.seq_kill_times.get(index),
            "detected_at": standby.suspected_at,
            "promoted_at": standby.promoted_at,
        })
        self._failover_servers.append(new)

    def failover_report(self) -> List[dict]:
        """One dict per completed failover with the MTTR decomposition:
        detection (kill → suspected), promotion (suspected → promoted,
        ~0 since promotion is synchronous in the detector callback),
        time-to-first-grant (promoted → first post-failover grant, which
        includes the re-assertion hold-off), and ``mttr`` (kill → first
        post-failover grant).  Times are None when the corresponding
        event has not happened (e.g. no grant issued yet)."""
        report = []
        for rec, server in zip(self.failover_records,
                               self._failover_servers):
            out = dict(rec)
            out["first_grant_at"] = server.first_grant_at
            out["locks_reasserted"] = server.locks_reasserted
            killed = out["killed_at"]
            detected = out["detected_at"]
            out["detection_time"] = (detected - killed
                                     if killed is not None
                                     and detected is not None else None)
            out["promotion_time"] = (out["promoted_at"] - detected
                                     if detected is not None else None)
            if killed is not None and server.first_grant_at is not None:
                out["time_to_first_grant"] = (server.first_grant_at
                                              - out["promoted_at"])
                out["mttr"] = server.first_grant_at - killed
            else:
                out["time_to_first_grant"] = None
                out["mttr"] = None
            report.append(out)
        return report

    # ------------------------------------------------------------ aggregates
    @property
    def all_lock_servers(self):
        """Active plus retired lock servers — the full population for
        stats aggregation (a deposed sequencer's counters still count)."""
        return self.lock_servers + self.retired_lock_servers
    def total_lock_server_stats(self) -> dict:
        agg: Dict[str, float] = {}
        for ls in self.all_lock_servers:
            for k, v in vars(ls.stats).items():
                agg[k] = agg.get(k, 0) + v
        return agg

    def total_device_bytes_written(self) -> int:
        return sum(ds.device.stats.bytes_written for ds in self.data_servers)

    def resilience_counters(self) -> Dict[str, int]:
        """Aggregate fault-resilience counters (retry/watchdog machinery
        from the fault layer plus the lease/eviction counters) for the
        harness report and the ``repro chaos`` summary.

        Delegates to :func:`repro.metrics.collect.resilience_counters`
        (the single counting path shared with ``metrics_snapshot``);
        always returns the full key set, zero-filled, so healthy-run
        reports do not churn against faulty ones.
        """
        from repro.metrics.collect import resilience_counters
        return resilience_counters(self)

    def metrics_snapshot(self):
        """The full catalogued :class:`~repro.metrics.MetricsSnapshot`
        of this cluster, taken at the current simulated time."""
        from repro.metrics.collect import collect_cluster_metrics
        return collect_cluster_metrics(self)

    def liveness_events(self):
        """All lock servers' lease/eviction timelines, merged and
        time-sorted (the ``repro chaos`` eviction timeline)."""
        events = [ev for ls in self.all_lock_servers for ev in ls.liveness_log]
        events.sort(key=lambda ev: ev.time)
        return events
