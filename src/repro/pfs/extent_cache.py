"""The data server's extent cache and its cleaning task (§IV-B).

The cache tracks, per stripe, the maximum SN of every byte range already
written to the device; incoming flush blocks are merged against it and
only the winning parts (the *update set*) reach the device.

Size control follows the paper's two methods:

1. an asynchronous low-priority cleaning task: once the total entry count
   exceeds a threshold, it picks at most ``clean_batch`` entries per pass,
   queries the lock server for the minimum SN (mSN) of unreleased write
   locks overlapping them, and drops entries whose SN is settled
   (``sn <= mSN``);
2. if cleaning cannot shrink the cache (many early-granted locks still
   flushing), the server forces a global sync by acquiring a whole-range
   read lock on each stripe, which drains all client caches; the logs can
   then be truncated.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Hashable, List, Optional, Tuple

from repro.dlm.extent import ExtentMap
from repro.sim.core import Simulator

__all__ = ["ServerExtentCache"]

#: Query/force hooks are installed by the data server (they need RPC
#: plumbing this module should not know about).
MsnQueryFn = Callable[[Hashable, Tuple[Tuple[int, int], ...]], Generator]
ForceSyncFn = Callable[[Hashable], Generator]


class ServerExtentCache:
    """All stripes' extent caches on one data server."""

    def __init__(self, sim: Simulator, entry_threshold: int = 256 * 1024,
                 clean_batch: int = 1024, clean_interval: float = 0.01):
        if entry_threshold < 1 or clean_batch < 1:
            raise ValueError("threshold and batch must be >= 1")
        self.sim = sim
        self.entry_threshold = entry_threshold
        self.clean_batch = clean_batch
        self.clean_interval = clean_interval
        self._maps: Dict[Hashable, ExtentMap] = {}
        self.msn_query_fn: Optional[MsnQueryFn] = None
        self.force_sync_fn: Optional[ForceSyncFn] = None
        # Counters.
        self.entries_cleaned = 0
        self.clean_passes = 0
        self.forced_syncs = 0
        self._cleaner = None
        #: First-merge instant per stripe with uncleaned entries; feeds
        #: the mSN pin-duration histogram (how long entries sat pinned
        #: behind unreleased write locks before cleaning freed them).
        self._pinned_since: Dict[Hashable, float] = {}
        reg = getattr(sim, "metrics", None)
        self._pin_hist = (reg.histogram("cache.extent.pin_time",
                                        unit="seconds",
                                        owner="pfs.extent_cache")
                          if reg is not None else None)

    # ------------------------------------------------------------- the map
    def map_for(self, stripe_key: Hashable) -> ExtentMap:
        m = self._maps.get(stripe_key)
        if m is None:
            m = self._maps[stripe_key] = ExtentMap()
        return m

    def merge(self, stripe_key: Hashable, start: int, end: int,
              sn: int) -> List[Tuple[int, int]]:
        """Fig. 15 steps ①/②: merge one incoming block, return its
        update set."""
        self._pinned_since.setdefault(stripe_key, self.sim.now)
        return self.map_for(stripe_key).merge(start, end, sn)

    @property
    def total_entries(self) -> int:
        return sum(len(m) for m in self._maps.values())

    def stripe_keys(self) -> List[Hashable]:
        return list(self._maps.keys())

    def install(self, stripe_key: Hashable, emap: ExtentMap) -> None:
        """Replace a stripe's map (log replay during recovery)."""
        self._maps[stripe_key] = emap

    def clear(self) -> None:
        self._maps.clear()
        self._pinned_since.clear()

    # ------------------------------------------------------------- cleaning
    def kick(self) -> None:
        """Schedule an immediate cleaning pass, out of band of the
        periodic loop — used after a client eviction reclaimed write
        locks and thereby advanced the mSN floor: entries that were
        pinned by the dead client's unreleased locks become droppable at
        once."""
        self.sim.spawn(self.clean_pass(), name="extent-cache-kick")

    def start_cleaner(self) -> None:
        """Spawn the periodic low-priority cleaning process."""
        if self._cleaner is None:
            self._cleaner = self.sim.spawn(self._clean_loop(),
                                           name="extent-cache-cleaner")

    def _clean_loop(self) -> Generator:
        while True:
            yield self.clean_interval
            if self.total_entries <= self.entry_threshold:
                continue
            cleaned = yield self.sim.spawn(self.clean_pass())
            if self.total_entries > self.entry_threshold and cleaned == 0 \
                    and self.force_sync_fn is not None:
                # Method (2): cleaning is stuck behind unflushed
                # early-granted locks — force a global sync.
                self.forced_syncs += 1
                for key in self.stripe_keys():
                    yield self.sim.spawn(self.force_sync_fn(key))

    def clean_pass(self) -> Generator:
        """One bounded cleaning pass (at most ``clean_batch`` entries);
        returns how many entries were dropped."""
        self.clean_passes += 1
        if self.msn_query_fn is None:
            return 0
        budget = self.clean_batch
        cleaned = 0
        for key in self.stripe_keys():
            if budget <= 0:
                break
            emap = self._maps[key]
            picked = emap.entries()[:budget]
            if not picked:
                continue
            budget -= len(picked)
            extents = tuple((s, e) for s, e, _sn in picked)
            msn = yield self.sim.spawn(self.msn_query_fn(key, extents))
            if msn is None:
                continue
            dropped = emap.drop_where(
                lambda s, e, sn, lim=msn, ext=set(picked):
                (s, e, sn) in ext and sn <= lim)
            cleaned += dropped
            if dropped:
                pinned_at = self._pinned_since.get(key)
                if self._pin_hist is not None and pinned_at is not None:
                    self._pin_hist.observe(self.sim.now - pinned_at)
                # Remaining entries start a fresh pin interval.
                if len(emap):
                    self._pinned_since[key] = self.sim.now
                else:
                    self._pinned_since.pop(key, None)
        self.entries_cleaned += cleaned
        return cleaned
