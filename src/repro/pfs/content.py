"""Payload content-tracking modes for the data path.

The seed model had a boolean choice: store every written byte for real
(``track_content=True`` — needed by the §V-B data-safety experiments) or
keep no content at all (pure-performance runs).  Full tracking costs a
numpy buffer copy per cached/stored slice plus the buffers themselves,
which dominates paper-scale sweeps that never read the bytes back.

This module makes the choice tri-state:

``"full"``
    Real bytes in the client page cache and data-server block store;
    reads return actual content and verify oracles work.  The old
    ``track_content=True``.

``"checksum"``
    No byte buffers anywhere.  Instead every write folds its update set
    — ``(start, end, sn)`` per surviving slice, plus a CRC32 of the
    payload slice when the caller provided bytes — into a rolling CRC32
    per stripe.  Two runs that claim to be equivalent must produce
    identical digests, which turns the digest into a cheap cross-run /
    cross-implementation integrity oracle at near-``"off"`` speed.
    Reads return ``None`` exactly as in ``"off"`` mode.

``"off"``
    Extent/SN bookkeeping only (sizes are still tracked).  The old
    ``track_content=False``.

``resolve_content_mode`` keeps the boolean API working: components and
configs still accept ``track_content``; an explicit ``content_mode``
always wins over the bool.
"""

from __future__ import annotations

import zlib
from typing import Optional

__all__ = [
    "CONTENT_FULL",
    "CONTENT_CHECKSUM",
    "CONTENT_OFF",
    "CONTENT_MODES",
    "resolve_content_mode",
    "fold_update",
    "payload_crc",
]

CONTENT_FULL = "full"
CONTENT_CHECKSUM = "checksum"
CONTENT_OFF = "off"
CONTENT_MODES = (CONTENT_FULL, CONTENT_CHECKSUM, CONTENT_OFF)


def resolve_content_mode(track_content: bool = True,
                         content_mode: Optional[str] = None) -> str:
    """Collapse the legacy bool and the tri-state into one mode string."""
    if content_mode is None:
        return CONTENT_FULL if track_content else CONTENT_OFF
    if content_mode not in CONTENT_MODES:
        raise ValueError(
            f"content_mode must be one of {CONTENT_MODES}, "
            f"got {content_mode!r}")
    return content_mode


def fold_update(crc: int, start: int, end: int, sn: int,
                data_crc: int = 0) -> int:
    """Fold one surviving update slice into a rolling stripe digest."""
    return zlib.crc32(b"%d:%d:%d:%d;" % (start, end, sn, data_crc), crc)


def payload_crc(data) -> int:
    """CRC32 of a payload slice (bytes/bytearray/memoryview)."""
    return zlib.crc32(data)
