"""The external namespace service (the paper uses NFS or Lustre; the
artifact uses an NFS shared directory whose inode numbers become FIDs).

A single metadata node exposes create/open/stat/set-size/truncate over
RPC.  ccPFS only consults it at open time, for append's implicit size
read, and for lazy size updates piggybacked on flushes — the data path
never touches it, matching the paper's architecture (Fig. 13).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.fabric import Node
from repro.net.rpc import Request, RpcService

__all__ = ["FileMeta", "MetadataServer", "MetaOp"]


@dataclass
class FileMeta:
    fid: int
    path: str
    size: int
    stripe_count: int
    stripe_size: int


@dataclass
class MetaOp:
    """Wire record for metadata RPCs."""

    op: str                      # create | open | stat | set_size | truncate
    path: Optional[str] = None
    fid: Optional[int] = None
    size: Optional[int] = None
    stripe_count: Optional[int] = None
    stripe_size: Optional[int] = None


class MetadataServer:
    """NFS-like namespace service."""

    def __init__(self, node: Node, ops: float = 100_000.0,
                 default_stripe_count: int = 1,
                 default_stripe_size: int = 1024 * 1024,
                 admission=None):
        self.node = node
        self.default_stripe_count = default_stripe_count
        self.default_stripe_size = default_stripe_size
        self._by_path: Dict[str, FileMeta] = {}
        self._by_fid: Dict[int, FileMeta] = {}
        self._fids = itertools.count(1)
        self.service = RpcService(node, "meta", self._handle, ops=ops,
                                  admission=admission)

    # ------------------------------------------------------------ direct API
    # (used by cluster setup code so experiments can pre-create files
    # without spending simulated time)
    def create(self, path: str, stripe_count: Optional[int] = None,
               stripe_size: Optional[int] = None) -> FileMeta:
        if path in self._by_path:
            raise FileExistsError(path)
        meta = FileMeta(
            fid=next(self._fids), path=path, size=0,
            stripe_count=stripe_count or self.default_stripe_count,
            stripe_size=stripe_size or self.default_stripe_size)
        self._by_path[path] = meta
        self._by_fid[meta.fid] = meta
        return meta

    def lookup(self, path: str) -> Optional[FileMeta]:
        return self._by_path.get(path)

    def by_fid(self, fid: int) -> Optional[FileMeta]:
        return self._by_fid.get(fid)

    # --------------------------------------------------------------- service
    def _handle(self, req: Request) -> None:
        msg: MetaOp = req.payload
        if msg.op == "create":
            if msg.path in self._by_path:
                req.respond(FileNotFoundError(f"exists: {msg.path}"))
                return
            req.respond(self.create(msg.path, msg.stripe_count,
                                    msg.stripe_size))
        elif msg.op == "open":
            req.respond(self._by_path.get(msg.path))
        elif msg.op == "stat":
            req.respond(self._by_fid.get(msg.fid))
        elif msg.op == "set_size":
            meta = self._by_fid.get(msg.fid)
            if meta is not None and msg.size > meta.size:
                meta.size = msg.size
            req.respond(meta.size if meta else None)
        elif msg.op == "truncate":
            meta = self._by_fid.get(msg.fid)
            if meta is not None:
                meta.size = msg.size
            req.respond(meta.size if meta else None)
        else:  # pragma: no cover - protocol error
            raise ValueError(f"unknown meta op {msg.op!r}")
