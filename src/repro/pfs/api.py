"""libccPFS: the POSIX-like façade of §IV.

The paper ships ``libccPFS`` with POSIX-style calls that applications
link directly or reach through an IO-forwarding daemon.  This module is
the equivalent: a :class:`CcpfsFile` wraps a (client, handle) pair with
``pwrite``/``pread``/``append``/``truncate``/``fsync``/``size``/``close``
coroutines, maintaining a seek cursor for the sequential ``write``/
``read`` variants.

Everything here is sugar over :class:`~repro.pfs.client.CcpfsClient`;
all calls are simulation coroutines, to be driven with ``yield from``
inside a process.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.dlm.types import LockMode
from repro.pfs.client import CcpfsClient, FileHandle

__all__ = ["CcpfsFile", "libccpfs_open"]


class CcpfsFile:
    """An open ccPFS file with POSIX-like coroutine methods."""

    def __init__(self, client: CcpfsClient, handle: FileHandle):
        self.client = client
        self.handle = handle
        self.pos = 0
        self._closed = False

    # ------------------------------------------------------------- plumbing
    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("I/O operation on closed file")

    @property
    def fid(self) -> int:
        return self.handle.fid

    # ----------------------------------------------------------- positioned
    def pwrite(self, data: Optional[bytes] = None, offset: int = 0,
               nbytes: Optional[int] = None,
               forced_mode: Optional[LockMode] = None) -> Generator:
        self._check_open()
        n = yield from self.client.write(self.handle, offset, data=data,
                                         nbytes=nbytes,
                                         forced_mode=forced_mode)
        return n

    def pread(self, offset: int, nbytes: int,
              forced_mode: Optional[LockMode] = None) -> Generator:
        self._check_open()
        data = yield from self.client.read(self.handle, offset, nbytes,
                                           forced_mode=forced_mode)
        return data

    # ------------------------------------------------------------ sequential
    def write(self, data: Optional[bytes] = None,
              nbytes: Optional[int] = None) -> Generator:
        self._check_open()
        n = nbytes if nbytes is not None else (len(data) if data else 0)
        written = yield from self.client.write(self.handle, self.pos,
                                               data=data, nbytes=n)
        self.pos += written
        return written

    def read(self, nbytes: int) -> Generator:
        self._check_open()
        data = yield from self.client.read(self.handle, self.pos, nbytes)
        self.pos += nbytes
        return data

    def seek(self, offset: int) -> int:
        self._check_open()
        if offset < 0:
            raise ValueError(f"negative seek {offset}")
        self.pos = offset
        return self.pos

    # ------------------------------------------------------------- the rest
    def append(self, data: Optional[bytes] = None,
               nbytes: Optional[int] = None) -> Generator:
        self._check_open()
        offset = yield from self.client.append(self.handle, data=data,
                                               nbytes=nbytes)
        return offset

    def truncate(self, size: int) -> Generator:
        self._check_open()
        yield from self.client.truncate(self.handle, size)

    def fsync(self) -> Generator:
        self._check_open()
        yield from self.client.fsync(self.handle)

    def size(self) -> Generator:
        self._check_open()
        n = yield from self.client.file_size(self.handle)
        return n

    def close(self) -> Generator:
        if self._closed:
            return
        self._closed = True
        yield from self.client.close(self.handle)


def libccpfs_open(client: CcpfsClient, path: str, create: bool = False,
                  stripe_count: Optional[int] = None,
                  stripe_size: Optional[int] = None) -> Generator:
    """Open (optionally create) a file; returns a :class:`CcpfsFile`."""
    handle = yield from client.open(path, create=create,
                                    stripe_count=stripe_count,
                                    stripe_size=stripe_size)
    return CcpfsFile(client, handle)
