"""The ccPFS client cache (Fig. 14 and §IV-C1).

Written data enters the cache tagged with the SN of the granting lock;
insertion is newest-SN-wins, resolving client-cache conflicts between an
old CANCELING lock's data and a new lock's data (Fig. 14).  The cache
tracks, per ``(fid, stripe)``:

* ``versions`` — an :class:`~repro.dlm.extent.ExtentMap` of every cached
  byte's SN (clean or dirty); this is the read-validity map;
* ``dirty`` — the subset not yet flushed, also SN-tagged; flush extraction
  slices these into wire blocks;
* optionally the actual bytes (disabled for pure-performance runs, where
  only the extent bookkeeping matters).

Durability thresholds (§IV-C1): when dirty bytes reach ``min_dirty`` the
owning client's daemon flushes voluntarily; at ``max_dirty`` the write
gate closes and new writes block until flushes drain the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro._compat import DATACLASS_KW
from repro.dlm.extent import Extent, ExtentMap
from repro.pfs.content import (
    CONTENT_CHECKSUM,
    CONTENT_FULL,
    fold_update,
    payload_crc,
    resolve_content_mode,
)
from repro.sim.core import Simulator
from repro.sim.sync import Gate
from repro.storage.blockstore import StripeObject

__all__ = ["ClientCache", "FlushBlock", "StripeCacheEntry"]


@dataclass(**DATACLASS_KW)
class FlushBlock:
    """One dirty piece headed for a data server."""

    offset: int  # stripe-local
    length: int
    sn: int
    data: Optional[bytes]  # None unless content mode is "full"


@dataclass(**DATACLASS_KW)
class StripeCacheEntry:
    versions: ExtentMap = field(default_factory=ExtentMap)
    dirty: ExtentMap = field(default_factory=ExtentMap)
    content: Optional[StripeObject] = None


class ClientCache:
    """Per-client page cache over all files/stripes it touches."""

    def __init__(self, sim: Simulator, track_content: bool = True,
                 min_dirty: int = 256 * 1024 * 1024,
                 max_dirty: int = 4 * 1024 * 1024 * 1024,
                 max_cached: Optional[int] = None,
                 content_mode: Optional[str] = None):
        if not (0 < min_dirty <= max_dirty):
            raise ValueError("need 0 < min_dirty <= max_dirty")
        if max_cached is not None and max_cached < max_dirty:
            raise ValueError("max_cached must be >= max_dirty")
        self.sim = sim
        self.content_mode = resolve_content_mode(track_content, content_mode)
        #: Back-compat bool: only "full" mode materializes byte buffers.
        self.track_content = self.content_mode == CONTENT_FULL
        self._checksum = self.content_mode == CONTENT_CHECKSUM
        #: Rolling CRC32 per stripe of the accepted write stream
        #: (checksum mode only); see :mod:`repro.pfs.content`.
        self._digests: Dict[Hashable, int] = {}
        self.min_dirty = min_dirty
        self.max_dirty = max_dirty
        #: §IV memory pool: total cached bytes (clean + dirty) above which
        #: clean extents are reclaimed, LRU by stripe.  None = unbounded.
        self.max_cached = max_cached
        self._entries: Dict[Hashable, StripeCacheEntry] = {}
        self._dirty_bytes = 0
        #: Closed while dirty bytes exceed ``max_dirty``; writers wait on it.
        self.gate = Gate(sim, open_=True)
        #: Signalled (opened) whenever dirty bytes cross ``min_dirty``;
        #: the flush daemon waits on it.
        self.flush_signal = Gate(sim, open_=False)
        # LRU order of stripe keys for clean-page reclamation.
        self._lru: Dict[Hashable, None] = {}
        # Counters.
        self.bytes_written = 0
        self.bytes_flushed = 0
        self.bytes_evicted = 0
        self.read_hits = 0
        self.read_misses = 0
        self.invalidations = 0

    # -------------------------------------------------------------- helpers
    def _entry(self, key: Hashable) -> StripeCacheEntry:
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = StripeCacheEntry(
                content=StripeObject() if self.track_content else None)
        # Move-to-back LRU touch.
        self._lru.pop(key, None)
        self._lru[key] = None
        return entry

    @property
    def cached_bytes(self) -> int:
        """Total cached (clean + dirty) bytes across all stripes."""
        return sum(e.versions.covered_bytes()
                   for e in self._entries.values())

    def _reclaim(self) -> None:
        """Evict clean extents, least-recently-used stripe first, until
        the pool fits under ``max_cached`` (the §IV page reclamation)."""
        if self.max_cached is None:
            return
        excess = self.cached_bytes - self.max_cached
        if excess <= 0:
            return
        for key in list(self._lru):
            if excess <= 0:
                break
            entry = self._entries.get(key)
            if entry is None:
                self._lru.pop(key, None)
                continue
            # Clean bytes = versions minus dirty; evict whole clean runs.
            for s0, e0, _sn in list(entry.versions.entries()):
                if excess <= 0:
                    break
                # Skip any piece that overlaps dirty data.
                dirty_parts = entry.dirty.overlapping(s0, e0)
                if dirty_parts:
                    continue
                entry.versions.extract(s0, e0)
                freed = e0 - s0
                excess -= freed
                self.bytes_evicted += freed

    @property
    def dirty_bytes(self) -> int:
        return self._dirty_bytes

    def keys(self) -> List[Hashable]:
        return list(self._entries.keys())

    def digest(self, key: Hashable) -> int:
        """Rolling write-stream CRC32 for one stripe (checksum mode)."""
        return self._digests.get(key, 0)

    def digests(self) -> Dict[Hashable, int]:
        return dict(self._digests)

    def dirty_keys(self) -> List[Hashable]:
        return [k for k, e in self._entries.items() if len(e.dirty)]

    def _dirty_delta(self, entry: StripeCacheEntry, before: int) -> None:
        self._dirty_bytes += entry.dirty.covered_bytes() - before
        if self._dirty_bytes >= self.max_dirty:
            self.gate.close()
        elif self.gate is not None and self._dirty_bytes < self.max_dirty:
            self.gate.open()
        if self._dirty_bytes >= self.min_dirty:
            self.flush_signal.open()

    # ---------------------------------------------------------------- write
    def write(self, key: Hashable, offset: int, length: int, sn: int,
              data: Optional[bytes] = None) -> int:
        """Insert written data at ``sn`` (newest-SN-wins); returns how many
        bytes actually updated the cache (older-than-cached parts are
        discarded, Fig. 14)."""
        entry = self._entry(key)
        before = entry.dirty.covered_bytes()
        updates = entry.versions.merge(offset, offset + length, sn)
        written = 0
        content = entry.content
        # One memoryview up front: per-update slices below are then
        # zero-copy views, not bytes copies.
        mv = memoryview(data) if data is not None else None
        digest = self._digests.get(key, 0) if self._checksum else 0
        for s, e in updates:
            entry.dirty.merge(s, e, sn)
            written += e - s
            if content is not None and mv is not None:
                content.write(s, mv[s - offset:e - offset])
            elif self._checksum:
                digest = fold_update(
                    digest, s, e, sn,
                    payload_crc(mv[s - offset:e - offset])
                    if mv is not None else 0)
        if self._checksum:
            self._digests[key] = digest
        self.bytes_written += written
        self._dirty_delta(entry, before)
        self._reclaim()
        return written

    def insert_clean(self, key: Hashable, offset: int, length: int, sn: int,
                     data: Optional[bytes] = None) -> None:
        """Cache data fetched from a data server (read path); never marks
        it dirty."""
        entry = self._entry(key)
        updates = entry.versions.merge(offset, offset + length, sn)
        if entry.content is not None and data is not None:
            mv = memoryview(data)
            for s, e in updates:
                entry.content.write(s, mv[s - offset:e - offset])
        self._reclaim()

    # ----------------------------------------------------------------- read
    def read(self, key: Hashable, offset: int,
             length: int) -> Tuple[Optional[bytes], List[Extent]]:
        """Return ``(data, missing)``.  ``missing`` lists the sub-extents
        not present in the cache; ``data`` is the (possibly partially
        stale-filled) content buffer, or None without content tracking."""
        entry = self._entries.get(key)
        if entry is None:
            self.read_misses += 1
            return None, [(offset, offset + length)]
        missing = entry.versions.gaps(offset, offset + length)
        if missing:
            self.read_misses += 1
        else:
            self.read_hits += 1
        data = None
        if entry.content is not None:
            data = entry.content.read(offset, length)
        return data, missing

    def covers(self, key: Hashable, offset: int, length: int) -> bool:
        entry = self._entries.get(key)
        return entry is not None and entry.versions.covers(offset,
                                                           offset + length)

    # ---------------------------------------------------------------- flush
    def extract_dirty(self, key: Hashable,
                      extents: Tuple[Extent, ...]) -> List[FlushBlock]:
        """Remove and return the dirty pieces under ``extents`` (a lock's
        range at cancel, or everything for fsync)."""
        entry = self._entries.get(key)
        if entry is None:
            return []
        before = entry.dirty.covered_bytes()
        blocks: List[FlushBlock] = []
        for s0, e0 in extents:
            for s, e, sn in entry.dirty.extract(s0, e0):
                data = None
                if entry.content is not None:
                    data = entry.content.read(s, e - s)
                blocks.append(FlushBlock(s, e - s, sn, data))
        flushed = sum(b.length for b in blocks)
        self.bytes_flushed += flushed
        self._dirty_delta(entry, before)
        if self._dirty_bytes < self.min_dirty:
            self.flush_signal.close()
        return blocks

    def restore_dirty(self, key: Hashable, blocks: List[FlushBlock]) -> None:
        """Put extracted blocks back (failed flush, §IV-C2 redo path)."""
        entry = self._entry(key)
        before = entry.dirty.covered_bytes()
        for b in blocks:
            entry.dirty.merge(b.offset, b.offset + b.length, b.sn)
            entry.versions.merge(b.offset, b.offset + b.length, b.sn)
            if entry.content is not None and b.data is not None:
                entry.content.write(b.offset, b.data)
        self.bytes_flushed -= sum(b.length for b in blocks)
        self._dirty_delta(entry, before)

    def has_dirty(self, key: Hashable,
                  extents: Tuple[Extent, ...]) -> bool:
        entry = self._entries.get(key)
        if entry is None:
            return False
        return any(entry.dirty.overlapping(s, e) for s, e in extents)

    # ----------------------------------------------------------- invalidate
    def invalidate(self, key: Hashable, extents: Tuple[Extent, ...],
                   up_to_sn: Optional[int] = None) -> None:
        """Drop cached data under a lock being released — cached contents
        are only valid while a covering lock is held.

        ``up_to_sn`` limits the drop to data at or below that SN: a lock
        cancel must never discard bytes written under a *newer* lock whose
        (unexpanded) range overlaps the canceled lock's expanded range.
        """
        self.invalidations += 1
        entry = self._entries.get(key)
        if entry is None:
            return
        before = entry.dirty.covered_bytes()
        for s, e in extents:
            for ts, te, tsn in entry.versions.extract(s, e):
                if up_to_sn is not None and tsn > up_to_sn:
                    entry.versions.merge(ts, te, tsn)  # newer lock's data
            for ts, te, tsn in entry.dirty.extract(s, e):
                if up_to_sn is not None and tsn > up_to_sn:
                    entry.dirty.merge(ts, te, tsn)
        self._dirty_delta(entry, before)

    def drop_all(self) -> None:
        """Crash simulation: volatile cache contents disappear."""
        self._entries.clear()
        self._lru.clear()
        self._digests.clear()
        self._dirty_bytes = 0
        self.gate.open()
        self.flush_signal.close()
