"""The ccPFS client: POSIX-style IO with implicit, transparent locking.

Like Lustre (and §IV of the paper), locking is folded into IO: a write
acquires per-stripe locks under the Fig. 10 selection rules, deposits the
data in the client cache tagged with each lock's SN, and returns — the
write is "done" when it is in the cache, which is what the paper's PIO
time measures.  Flushing happens asynchronously: on lock cancel, on the
voluntary-flush daemon's threshold (§IV-C1), or on an explicit fsync.

Multi-stripe writes take BW locks in ascending stripe order (deadlock-free
total order), preserving single-write atomicity across resources
(§III-B1); appends take PW whole-range locks on every stripe plus a
metadata size read (§III-B2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Hashable, List, Optional, Tuple

from repro.dlm.client import ClientLock, LockClient
from repro.dlm.config import select_mode
from repro.dlm.extent import EOF, align_extent
from repro.dlm.types import LockMode
from repro.dlm.messages import FencedMsg
from repro.net.fabric import Node
from repro.net.rpc import (
    CTRL_MSG_BYTES,
    RetryPolicy,
    RpcTimeoutError,
    one_way,
    rpc_call,
    rpc_call_retry,
)
from repro.pfs.data_server import (
    IoReadMsg,
    IoSizeMsg,
    IoTruncateMsg,
    IoWriteMsg,
    WireBlock,
)
from repro.pfs.layout import StripeLayout
from repro.pfs.metadata import FileMeta, MetaOp
from repro.pfs.page_cache import ClientCache

__all__ = ["CcpfsClient", "FileHandle", "CcpfsClientStats"]


@dataclass
class FileHandle:
    """An open file: metadata snapshot plus layout."""

    meta: FileMeta
    layout: StripeLayout
    #: Highest byte this client has written (lazy size propagation).
    max_written: int = 0

    @property
    def fid(self) -> int:
        return self.meta.fid


@dataclass
class CcpfsClientStats:
    writes: int = 0
    reads: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    read_rpcs: int = 0
    flush_rpcs: int = 0
    flush_retries: int = 0
    #: Flushes abandoned after exhausting retries (dead/blacked-out
    #: sender or receiver; the blocks are dropped — post-eviction the
    #: server-side resolution owns those bytes).
    flush_failures: int = 0
    #: Flushes rejected by a data server because this client's
    #: incarnation was fenced (zombie writes stopped server-side).
    fenced_flushes: int = 0
    cache_read_hits: int = 0
    #: Simulated seconds spent inside write()/read() calls (the numerator
    #: of the paper's locking/IO ratio denominators).
    io_time: float = 0.0


class CcpfsClient:
    """One application-side ccPFS client (libccPFS instance)."""

    def __init__(self, node: Node, lock_client: LockClient,
                 cache: ClientCache, *,
                 data_server_for, metadata_node: Node,
                 page_size: int = 4096,
                 mem_bandwidth: float = 8.0e9,
                 flush_timeout: Optional[float] = None,
                 start_flush_daemon: bool = True,
                 flush_wire_cap: Optional[int] = None,
                 partial_page_rmw: bool = False,
                 retry: Optional[RetryPolicy] = None,
                 rng=None):
        self.node = node
        self.sim = node.sim
        self.lock_client = lock_client
        self.cache = cache
        self.data_server_for = data_server_for
        self.metadata_node = metadata_node
        self.page_size = page_size
        self.mem_bandwidth = mem_bandwidth
        self.flush_timeout = flush_timeout
        #: Fig. 5 ablation: cap the bytes a flush RPC puts on the wire
        #: (the paper's hacked Lustre transfers only the first 4 KB page).
        self.flush_wire_cap = flush_wire_cap
        #: §III-B2: "in most PFSes a partial page write needs a
        #: synchronous page read and then an update".  ccPFS avoids this
        #: with sub-page SN extents (default False); enabling it models
        #: the conventional behaviour — unaligned writes become implicit
        #: reads, select PW, and fetch their boundary pages.
        self.partial_page_rmw = partial_page_rmw
        #: Optional timeout/backoff policy for all control RPCs; when set
        #: every request resends under :func:`rpc_call_retry` (for faulted
        #: runs — clean runs keep the zero-overhead plain calls).
        self.retry = retry
        self.rng = rng
        self.stats = CcpfsClientStats()
        self._open_handles: Dict[int, FileHandle] = {}
        #: In-flight voluntary-flush refcounts per stripe key; lock cancels
        #: wait these out so a release never precedes data durability.
        self._inflight: Dict[Hashable, int] = {}
        self._inflight_waiters: Dict[Hashable, list] = {}
        lock_client.set_flush_hooks(self._flush_for_lock, self._lock_dirty)
        lock_client.discard_fn = self._discard_for_locks
        self._daemon = None
        if start_flush_daemon:
            self._daemon = self.sim.spawn(self._flush_daemon(),
                                          name=f"{node.name}-flushd")

    # ------------------------------------------------------------------ rpc
    def _call(self, dst: Node, service: str, payload,
              nbytes: int = CTRL_MSG_BYTES) -> Generator:
        """One control RPC, retried under ``self.retry`` when configured."""
        if self.retry is None:
            reply = yield rpc_call(self.node, dst, service, payload,
                                   nbytes=nbytes)
        else:
            reply = yield from rpc_call_retry(
                self.node, dst, service, payload, nbytes=nbytes,
                policy=self.retry, rng=self.rng)
        return reply

    # ----------------------------------------------------------------- open
    def open(self, path: str, create: bool = False,
             stripe_count: Optional[int] = None,
             stripe_size: Optional[int] = None) -> Generator:
        """Open (optionally creating) a file; returns a FileHandle."""
        op = MetaOp(op="create" if create else "open", path=path,
                    stripe_count=stripe_count, stripe_size=stripe_size)
        meta = yield from self._call(self.metadata_node, "meta", op)
        if meta is None or isinstance(meta, Exception):
            raise FileNotFoundError(path)
        fh = FileHandle(meta=meta, layout=StripeLayout(
            meta.stripe_count, meta.stripe_size), max_written=meta.size)
        self._open_handles[meta.fid] = fh
        return fh

    # ---------------------------------------------------------------- write
    def write(self, fh: FileHandle, offset: int,
              data: Optional[bytes] = None, nbytes: Optional[int] = None,
              forced_mode: Optional[LockMode] = None) -> Generator:
        """Write ``data`` (or ``nbytes`` of untracked content) at
        ``offset``; returns when the data is in the client cache."""
        if nbytes is None:
            nbytes = len(data) if data is not None else 0
        if nbytes == 0:
            return 0
        t0 = self.sim.now
        yield self.cache.gate.wait()  # §IV-C1 max-dirty back-pressure
        # Stage the data into registered cache pages *before* locking —
        # only the extent insertion happens under the lock, so conflicting
        # writers' copies overlap (the memory-pool design of §IV).
        yield from self._charge_copy(nbytes)

        per_stripe = fh.layout.stripe_extents(offset, nbytes)
        implicit = self.partial_page_rmw and (
            offset % self.page_size != 0
            or (offset + nbytes) % self.page_size != 0)
        mode = select_mode(is_read=False, implicit_read=implicit,
                           multi_resource=len(per_stripe) > 1,
                           forced=forced_mode)
        locks = yield from self._acquire(fh, per_stripe, mode,
                                         for_write=True)
        if implicit and forced_mode is None:
            yield from self._rmw_boundary_pages(fh, offset, nbytes, locks)
        self._deposit(fh, offset, data, nbytes, locks)
        self._release(locks)
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        self.stats.io_time += self.sim.now - t0
        return nbytes

    def _rmw_boundary_pages(self, fh: FileHandle, offset: int,
                            nbytes: int,
                            locks: Dict[int, ClientLock]) -> Generator:
        """Conventional read-modify-write: synchronously fetch the
        unaligned boundary pages before updating them (§III-B2)."""
        ps = self.page_size
        pages = set()
        if offset % ps:
            pages.add((offset // ps) * ps)
        end = offset + nbytes
        if end % ps:
            pages.add((end // ps) * ps)
        for page_off in sorted(pages):
            for frag in fh.layout.map_extent(page_off, ps):
                key = (fh.fid, frag.stripe)
                _data, missing = self.cache.read(key, frag.local_offset,
                                                 frag.length)
                server = self.data_server_for(key)
                for ms, me in missing:
                    reply = yield from self._call(server, "io",
                                                  IoReadMsg(key, ms, me - ms))
                    self.stats.read_rpcs += 1
                    self.cache.insert_clean(key, ms, me - ms,
                                            locks[frag.stripe].sn, reply)

    def _charge_copy(self, nbytes: int) -> Generator:
        """Pay the memory-bandwidth cost of staging ``nbytes`` into the
        cache's registered page pool (outside any lock)."""
        if self.mem_bandwidth != float("inf") and nbytes:
            yield nbytes / self.mem_bandwidth

    def _deposit(self, fh: FileHandle, offset: int, data: Optional[bytes],
                 nbytes: int, locks: Dict[int, ClientLock]) -> None:
        """Insert staged data into the cache under already-held
        per-stripe locks (pure bookkeeping: the copy was paid up front)."""
        for frag in fh.layout.map_extent(offset, nbytes):
            piece = None
            if data is not None:
                rel = frag.file_offset - offset
                piece = data[rel:rel + frag.length]
            self.cache.write((fh.fid, frag.stripe), frag.local_offset,
                             frag.length, locks[frag.stripe].sn, piece)
        fh.max_written = max(fh.max_written, offset + nbytes)

    # ------------------------------------------------------------ lockahead
    def lock_ahead(self, fh: FileHandle, extents, mode: LockMode =
                   LockMode.PW) -> Generator:
        """Lustre-lockahead-style pre-acquisition (Moore et al., the
        paper's [12]): the application declares its future write extents
        and acquires precise, unexpanded locks for them up front, so the
        later writes are pure cache hits.

        This is the "reduce lock conflicts" alternative the paper
        contrasts SeqDLM with: it works brilliantly for disjoint strided
        patterns but requires application knowledge of the IO pattern
        and collapses under overlapping IO (see ``ext_lockahead``).
        Use with a no-expansion DLM config (e.g. ``dlm-datatype``) and
        ``page_size=1`` so the declared extents stay precise.
        """
        count = 0
        for offset, nbytes in extents:
            per_stripe = fh.layout.stripe_extents(offset, nbytes)
            for stripe in sorted(per_stripe):
                lock = yield from self.lock_client.lock(
                    (fh.fid, stripe), (per_stripe[stripe],), mode,
                    for_write=True)
                self.lock_client.unlock(lock)  # cached for the writes
                count += 1
        return count

    # ------------------------------------------------------------ vectored
    def write_vector(self, fh: FileHandle, ops, atomic: bool = True,
                     forced_mode: Optional[LockMode] = None) -> Generator:
        """Atomic non-contiguous write: ``ops`` is a list of
        ``(offset, data_or_nbytes)`` pairs (the Tile-IO shape, §V-D).

        Lock shape depends on the DLM: datatype locks carry the precise
        per-stripe extent lists (Ching et al.); extent DLMs take one
        minimum covering range per stripe — SeqDLM's rule in §V-D.  With
        several stripes involved and atomicity requested, writes use BW.
        """
        norm = []
        total = 0
        for offset, payload in ops:
            if isinstance(payload, (bytes, bytearray)):
                norm.append((offset, bytes(payload), len(payload)))
            else:
                norm.append((offset, None, int(payload)))
            total += norm[-1][2]
        if not norm:
            return 0
        t0 = self.sim.now
        yield self.cache.gate.wait()
        yield from self._charge_copy(total)

        # Per-stripe extent shape.
        datatype = self.lock_client.config.datatype_locks
        per_stripe: Dict[int, list] = {}
        for offset, _data, nbytes in norm:
            for stripe, ext in fh.layout.stripe_extents(offset,
                                                        nbytes).items():
                per_stripe.setdefault(stripe, []).append(ext)
        mode = select_mode(is_read=False, implicit_read=False,
                           multi_resource=atomic and len(per_stripe) > 1,
                           forced=forced_mode)
        locks: Dict[int, ClientLock] = {}
        for stripe in sorted(per_stripe):
            exts = per_stripe[stripe]
            if datatype:
                merged = []
                for s, e in sorted(exts):
                    if merged and s <= merged[-1][1]:
                        merged[-1] = (merged[-1][0], max(merged[-1][1], e))
                    else:
                        merged.append((s, e))
                extents = tuple(merged)
            else:
                lo = min(s for s, _e in exts)
                hi = max(e for _s, e in exts)
                extents = (align_extent((lo, hi), self.page_size),)
            locks[stripe] = yield from self.lock_client.lock(
                (fh.fid, stripe), extents, mode, for_write=True)
        for offset, data, nbytes in norm:
            self._deposit(fh, offset, data, nbytes, locks)
        self._release(locks)
        self.stats.writes += 1
        self.stats.bytes_written += total
        self.stats.io_time += self.sim.now - t0
        return total

    # ----------------------------------------------------------------- read
    def read(self, fh: FileHandle, offset: int, nbytes: int,
             forced_mode: Optional[LockMode] = None) -> Generator:
        """Read ``nbytes`` at ``offset``; returns the bytes (or None when
        content tracking is off)."""
        if nbytes == 0:
            return b""
        t0 = self.sim.now
        per_stripe = fh.layout.stripe_extents(offset, nbytes)
        mode = select_mode(is_read=True, forced=forced_mode)
        locks = yield from self._acquire(fh, per_stripe, mode,
                                         for_write=False)
        out = bytearray(nbytes) if self.cache.track_content else None
        for frag in fh.layout.map_extent(offset, nbytes):
            key = (fh.fid, frag.stripe)
            _data, missing = self.cache.read(key, frag.local_offset,
                                             frag.length)
            if missing:
                server = self.data_server_for(key)
                for ms, me in missing:
                    reply = yield from self._call(
                        server, "io", IoReadMsg(key, ms, me - ms))
                    self.stats.read_rpcs += 1
                    self.cache.insert_clean(key, ms, me - ms,
                                            locks[frag.stripe].sn, reply)
            else:
                self.stats.cache_read_hits += 1
            if self.mem_bandwidth != float("inf"):
                yield frag.length / self.mem_bandwidth
            if out is not None:
                data, _still = self.cache.read(key, frag.local_offset,
                                               frag.length)
                rel = frag.file_offset - offset
                out[rel:rel + frag.length] = data
        self._release(locks)
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        self.stats.io_time += self.sim.now - t0
        return bytes(out) if out is not None else None

    # --------------------------------------------------------------- append
    def append(self, fh: FileHandle, data: Optional[bytes] = None,
               nbytes: Optional[int] = None) -> Generator:
        """Atomic append: PW whole-range locks on every stripe (the
        implicit size read makes this a read-update op, §III-B2)."""
        if nbytes is None:
            nbytes = len(data) if data is not None else 0
        whole = {s: (0, EOF) for s in range(fh.layout.stripe_count)}
        locks = yield from self._acquire(fh, whole, LockMode.PW,
                                         for_write=True, aligned=False)
        meta = yield from self._call(self.metadata_node, "meta",
                                     MetaOp(op="stat", fid=fh.fid))
        # Glimpse: under the held PW locks every *other* client's cache has
        # been flushed, so the data servers plus our own local view give
        # the true size even when the MDS is lazily updated.
        stripe_sizes = {}
        for stripe in range(fh.layout.stripe_count):
            key = (fh.fid, stripe)
            stripe_sizes[stripe] = yield from self._call(
                self.data_server_for(key), "io", IoSizeMsg(key))
        size = max(meta.size, fh.max_written,
                   fh.layout.file_size_from_stripe_sizes(stripe_sizes))
        # Deposit under the held PW locks — never re-acquire mid-operation,
        # a revocation in between would deadlock the op against itself.
        yield from self._charge_copy(nbytes)
        self._deposit(fh, size, data, nbytes, locks)
        yield from self._call(self.metadata_node, "meta",
                              MetaOp(op="set_size", fid=fh.fid,
                                     size=size + nbytes))
        self._release(locks)
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        return size

    # -------------------------------------------------------------- truncate
    def truncate(self, fh: FileHandle, size: int) -> Generator:
        """Truncate to ``size`` under PW whole-range locks."""
        whole = {s: (0, EOF) for s in range(fh.layout.stripe_count)}
        locks = yield from self._acquire(fh, whole, LockMode.PW,
                                         for_write=True, aligned=False)
        acks = []
        for stripe in range(fh.layout.stripe_count):
            key = (fh.fid, stripe)
            local = fh.layout.stripe_local_size(stripe, size)
            # Retained bytes must be durable before the cut; the cut tail
            # is simply dropped from the cache.
            yield from self._flush_key(key, ((0, local),))
            self.cache.invalidate(key, ((local, EOF),))
            acks.append(self.sim.spawn(self._call(
                self.data_server_for(key), "io", IoTruncateMsg(key, local))))
        yield self.sim.all_of(acks)
        yield from self._call(self.metadata_node, "meta",
                              MetaOp(op="truncate", fid=fh.fid, size=size))
        fh.meta.size = size
        fh.max_written = min(fh.max_written, size)
        self._release(locks)

    # ----------------------------------------------------------------- fsync
    def fsync(self, fh: FileHandle) -> Generator:
        """Flush every dirty byte of the file to the data servers, then
        push the size to metadata."""
        procs = []
        for stripe in range(fh.layout.stripe_count):
            key = (fh.fid, stripe)
            procs.append(self.sim.spawn(
                self._flush_key(key, ((0, EOF),))))
        if procs:
            yield self.sim.all_of(procs)
        yield from self._call(self.metadata_node, "meta",
                              MetaOp(op="set_size", fid=fh.fid,
                                     size=fh.max_written))

    def flush_all(self) -> Generator:
        """Flush every dirty byte this client holds (any file)."""
        procs = [self.sim.spawn(self._flush_key(key, ((0, EOF),)))
                 for key in self.cache.dirty_keys()]
        if procs:
            yield self.sim.all_of(procs)

    def file_size(self, fh: FileHandle) -> Generator:
        meta = yield from self._call(self.metadata_node, "meta",
                                     MetaOp(op="stat", fid=fh.fid))
        return meta.size if meta else 0

    def close(self, fh: FileHandle) -> Generator:
        """Close: flush the file's dirty data (locks stay cached, as in
        Lustre)."""
        yield from self.fsync(fh)
        self._open_handles.pop(fh.fid, None)

    # ------------------------------------------------------------- lock glue
    def _acquire(self, fh: FileHandle, per_stripe: Dict[int, Tuple[int, int]],
                 mode: LockMode, for_write: bool,
                 aligned: bool = True) -> Generator:
        """Take per-stripe locks in ascending stripe order (deadlock-free
        total order for multi-resource operations)."""
        locks: Dict[int, ClientLock] = {}
        for stripe in sorted(per_stripe):
            ext = per_stripe[stripe]
            if aligned:
                ext = align_extent(ext, self.page_size)
            locks[stripe] = yield from self.lock_client.lock(
                (fh.fid, stripe), (ext,), mode, for_write=for_write)
        return locks

    def _release(self, locks: Dict[int, ClientLock]) -> None:
        for stripe in sorted(locks, reverse=True):
            self.lock_client.unlock(locks[stripe])

    # ------------------------------------------------------------ flush path
    def _lock_dirty(self, lock: ClientLock) -> bool:
        return self.cache.has_dirty(lock.resource_id, lock.extents)

    def _flush_for_lock(self, lock: ClientLock) -> Generator:
        """LockClient cancel hook: flush the lock's dirty data, then drop
        the now-unprotected cached bytes."""
        yield from self._flush_key(lock.resource_id, lock.extents)
        # Drop only what this lock protected: data written meanwhile under
        # a newer lock (higher SN) must survive in the cache.
        self.cache.invalidate(lock.resource_id, lock.extents,
                              up_to_sn=lock.sn)

    def _discard_for_locks(self, locks: List[ClientLock]) -> None:
        """LockClient rejoin hook: the eviction reclaimed these grants, so
        every cached byte under them — dirty included — is dead weight;
        flushing it later would be exactly the zombie write the fence
        rejects."""
        for lock in locks:
            self.cache.invalidate(lock.resource_id, lock.extents,
                                  up_to_sn=lock.sn)

    def _flush_key(self, key: Hashable, extents) -> Generator:
        # Wait out any in-flight voluntary flush of the same stripe so a
        # lock release never overtakes its data.
        while self._inflight.get(key, 0) > 0:
            ev = self.sim.event()
            self._inflight_waiters.setdefault(key, []).append(ev)
            yield ev
        blocks = self.cache.extract_dirty(key, tuple(extents))
        if not blocks:
            return
        self._inflight[key] = self._inflight.get(key, 0) + 1
        try:
            yield from self._send_blocks(key, blocks)
        finally:
            self._inflight[key] -= 1
            if self._inflight[key] == 0:
                for ev in self._inflight_waiters.pop(key, []):
                    ev.succeed()

    def _send_blocks(self, key: Hashable, blocks) -> Generator:
        msg = IoWriteMsg(key, [WireBlock(b.offset, b.length, b.sn, b.data)
                               for b in blocks],
                         client_name=self.node.name,
                         incarnation=self.lock_client.incarnation)
        server = self.data_server_for(key)
        wire = msg.nbytes
        if self.flush_wire_cap is not None:
            wire = min(wire, self.flush_wire_cap)
        if self.retry is not None:
            # Faulted runs: back off with the shared policy; the server
            # dedups the req_id so a re-executed flush is harmless anyway
            # (extent-cache merges are SN-idempotent).
            self.stats.flush_rpcs += 1
            try:
                reply = yield from rpc_call_retry(
                    self.node, server, "io", msg, nbytes=wire,
                    policy=self.retry, rng=self.rng,
                    on_retry=self._count_flush_retry)
            except RpcTimeoutError:
                # Retry budget exhausted — this sender is blacked out (or
                # the server is gone beyond its recovery window).  Drop
                # the blocks: if we were evicted meanwhile, the server
                # already resolved these extents; re-raising would tear
                # down the flush daemon with us.
                self.stats.flush_failures += 1
                return
            self._check_flush_reply(reply)
            return
        while True:
            self.stats.flush_rpcs += 1
            future = rpc_call(self.node, server, "io", msg, nbytes=wire)
            if self.flush_timeout is None:
                reply = yield future
                self._check_flush_reply(reply)
                return
            res = yield self.sim.any_of(
                [future, self.sim.timeout(self.flush_timeout,
                                          value="__timeout__")])
            if "__timeout__" not in res.values():
                self._check_flush_reply(res[future])
                return
            # Redo the flush RPC (§IV-C2: clients redo unacked flushes).
            self.stats.flush_retries += 1

    def _check_flush_reply(self, reply) -> None:
        if isinstance(reply, FencedMsg):
            self.stats.fenced_flushes += 1
            self.lock_client.note_fenced(reply)

    def _count_flush_retry(self, _attempt: int) -> None:
        self.stats.flush_rpcs += 1
        self.stats.flush_retries += 1

    def _flush_daemon(self) -> Generator:
        """§IV-C1 voluntary flusher: runs whenever dirty >= min_dirty."""
        while True:
            yield self.cache.flush_signal.wait()
            procs = [self.sim.spawn(self._flush_key(key, ((0, EOF),)))
                     for key in self.cache.dirty_keys()]
            if procs:
                yield self.sim.all_of(procs)
            else:
                # Nothing extractable right now; avoid a busy spin.
                yield 1e-4

    # --------------------------------------------------------------- helper
    def size_hint(self, fh: FileHandle) -> None:
        """Asynchronously push this client's size view to metadata."""
        one_way(self.node, self.metadata_node, "meta",
                MetaOp(op="set_size", fid=fh.fid, size=fh.max_written))
