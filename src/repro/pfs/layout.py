"""File striping: mapping file extents onto stripe-local extents.

ccPFS stripes a file round-robin in ``stripe_size`` chunks, like Lustre:
file chunk ``k`` lives on stripe ``k % stripe_count`` at stripe-local
offset ``(k // stripe_count) * stripe_size``.  Lock resources are
per-stripe and addressed in stripe-local byte space, so a write that spans
several stripes needs one lock per touched stripe — the situation that
motivates BW and lock downgrading (§III-B1, Fig. 8).

A useful property (relied on by the lock path): any *contiguous* file
extent maps to a *contiguous* stripe-local extent on each touched stripe,
so single-extent locks always suffice for contiguous IO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dlm.extent import Extent

__all__ = ["Fragment", "StripeLayout"]


@dataclass(frozen=True)
class Fragment:
    """One stripe-local piece of a file extent."""

    stripe: int       #: stripe index within the file
    local_offset: int  #: offset in the stripe object's byte space
    file_offset: int   #: corresponding file-logical offset
    length: int


@dataclass(frozen=True)
class StripeLayout:
    """Striping geometry of one file."""

    stripe_count: int
    stripe_size: int

    def __post_init__(self):
        if self.stripe_count < 1 or self.stripe_size < 1:
            raise ValueError("stripe_count and stripe_size must be >= 1")

    def locate(self, offset: int) -> Tuple[int, int]:
        """Map a file offset to ``(stripe, local_offset)``."""
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        chunk, within = divmod(offset, self.stripe_size)
        stripe = chunk % self.stripe_count
        local = (chunk // self.stripe_count) * self.stripe_size + within
        return stripe, local

    def map_extent(self, offset: int, length: int) -> List[Fragment]:
        """Split a file extent into per-stripe fragments, merging the
        chunks that land adjacently in the same stripe."""
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be >= 0")
        raw: List[Fragment] = []
        pos = offset
        remaining = length
        while remaining > 0:
            stripe, local = self.locate(pos)
            chunk_left = self.stripe_size - (pos % self.stripe_size)
            take = min(chunk_left, remaining)
            raw.append(Fragment(stripe, local, pos, take))
            pos += take
            remaining -= take
        # Merge fragments that are contiguous within a stripe (always the
        # case for a contiguous file extent, see module docstring).
        merged: List[Fragment] = []
        for frag in raw:
            prev = merged[-1] if merged else None
            if (prev is not None and prev.stripe == frag.stripe
                    and prev.local_offset + prev.length == frag.local_offset):
                merged[-1] = Fragment(prev.stripe, prev.local_offset,
                                      prev.file_offset,
                                      prev.length + frag.length)
            else:
                merged.append(frag)
        return merged

    def stripe_extents(self, offset: int, length: int) -> Dict[int, Extent]:
        """Per-stripe covering extents (stripe-local) of a file extent —
        what the lock path needs."""
        out: Dict[int, Extent] = {}
        for frag in self.map_extent(offset, length):
            s, e = frag.local_offset, frag.local_offset + frag.length
            if frag.stripe in out:
                os_, oe = out[frag.stripe]
                out[frag.stripe] = (min(os_, s), max(oe, e))
            else:
                out[frag.stripe] = (s, e)
        return out

    def local_to_file(self, stripe: int, local_offset: int) -> int:
        """Inverse of :meth:`locate`."""
        if not (0 <= stripe < self.stripe_count):
            raise ValueError(f"stripe {stripe} out of range")
        round_idx, within = divmod(local_offset, self.stripe_size)
        chunk = round_idx * self.stripe_count + stripe
        return chunk * self.stripe_size + within

    def stripe_local_size(self, stripe: int, file_size: int) -> int:
        """Size of a stripe's local byte space for a given logical file
        size (what truncate must cut each stripe object to)."""
        if not (0 <= stripe < self.stripe_count):
            raise ValueError(f"stripe {stripe} out of range")
        if file_size < 0:
            raise ValueError(f"negative file size {file_size}")
        full_chunks, rem = divmod(file_size, self.stripe_size)
        count = full_chunks // self.stripe_count
        if stripe < full_chunks % self.stripe_count:
            count += 1
        local = count * self.stripe_size
        if rem and stripe == full_chunks % self.stripe_count:
            local += rem
        return local

    def file_size_from_stripe_sizes(self, sizes: Dict[int, int]) -> int:
        """Logical file size implied by per-stripe object sizes."""
        best = 0
        for stripe, size in sizes.items():
            if size > 0:
                best = max(best, self.local_to_file(stripe, size - 1) + 1)
        return best
