"""ccPFS data server: the IO service plus SN-correct write handling.

Each data server owns a set of stripe objects (hashed onto it by the
cluster layout), one storage device, the extent cache that makes
out-of-order conflicting flushes safe (Fig. 15), and optionally an extent
log for recovery.  The co-located DLM service (same node) answers its
mSN queries with a local RPC.

Write routine (Fig. 15): for every incoming block, ① merge its SN into
the extent cache, ② record the changed parts in the update set, ③ write
only the update set to the device (stale parts are discarded), ④ append
the update set to the extent log, then ack the client.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Hashable, List, Optional, Tuple

from repro._compat import DATACLASS_KW
from repro.dlm.extent import EOF
from repro.dlm.messages import FencedMsg, MsnQueryMsg, WrongShardMsg
from repro.dlm.types import LockMode
from repro.net.fabric import Node
from repro.net.rpc import (
    CTRL_MSG_BYTES,
    Request,
    RpcService,
    rpc_call,
    rpc_call_retry,
)
from repro.pfs.content import (
    CONTENT_CHECKSUM,
    CONTENT_FULL,
    fold_update,
    payload_crc,
    resolve_content_mode,
)
from repro.pfs.extent_cache import ServerExtentCache
from repro.pfs.extent_log import ExtentLog
from repro.storage.blockstore import BlockStore
from repro.storage.device import StorageDevice

__all__ = ["DataServer", "IoWriteMsg", "IoReadMsg", "IoTruncateMsg",
           "IoSizeMsg", "WireBlock", "BLOCK_HEADER_BYTES"]

#: Per-block wire/entry overhead (the paper's 48-byte extent entries).
BLOCK_HEADER_BYTES = 48


@dataclass(**DATACLASS_KW)
class WireBlock:
    offset: int
    length: int
    sn: int
    data: Optional[bytes] = None


@dataclass(**DATACLASS_KW)
class IoWriteMsg:
    stripe_key: Hashable
    blocks: List[WireBlock]
    #: Sender identity for fencing: a flush from an evicted client
    #: incarnation must not reach the store (empty name = unfenced
    #: legacy/local sender).
    client_name: str = ""
    incarnation: int = 0

    @property
    def nbytes(self) -> int:
        return (sum(b.length for b in self.blocks)
                + BLOCK_HEADER_BYTES * len(self.blocks) + CTRL_MSG_BYTES)


@dataclass(**DATACLASS_KW)
class IoReadMsg:
    stripe_key: Hashable
    offset: int
    length: int


@dataclass(**DATACLASS_KW)
class IoTruncateMsg:
    stripe_key: Hashable
    size: int


@dataclass(**DATACLASS_KW)
class IoSizeMsg:
    stripe_key: Hashable


@dataclass(**DATACLASS_KW)
class DataServerStats:
    write_rpcs: int = 0
    read_rpcs: int = 0
    blocks_received: int = 0
    bytes_received: int = 0
    bytes_discarded: int = 0  # stale (lower-SN) parts dropped by the cache
    #: Flushes rejected because the sender's incarnation was fenced.
    fenced_writes: int = 0


class DataServer:
    """IO service of one ccPFS data server node."""

    def __init__(self, node: Node, device: StorageDevice,
                 extent_cache: ServerExtentCache,
                 io_ops: float = 1_000_000.0,
                 extent_log: Optional[ExtentLog] = None,
                 track_content: bool = True,
                 dedup: bool = False,
                 content_mode: Optional[str] = None,
                 admission=None):
        self.node = node
        self.sim = node.sim
        self.device = device
        self.extent_cache = extent_cache
        self.extent_log = extent_log
        self.content_mode = resolve_content_mode(track_content, content_mode)
        #: Back-compat bool: only "full" mode stores real bytes.
        self.track_content = self.content_mode == CONTENT_FULL
        self._checksum = self.content_mode == CONTENT_CHECKSUM
        #: Rolling CRC32 per stripe of the accepted update stream
        #: (checksum mode); a cheap cross-run integrity fingerprint.
        self.digests: Dict[Hashable, int] = {}
        self.store = BlockStore()
        self.stats = DataServerStats()
        self.service = RpcService(node, "io", self._handle, ops=io_ops,
                                  dedup=dedup, admission=admission)
        extent_cache.msn_query_fn = self._query_msn
        extent_cache.force_sync_fn = self._force_sync
        #: Installed by the cluster: a lock client local to this node used
        #: for forced global syncs (§IV-B method 2).
        self.local_lock_client = None
        #: Installed by the cluster (the co-located lock server's
        #: ``fence_floor``): maps ``(client_name, incarnation)`` to the
        #: minimum acceptable incarnation when fenced, else None.
        self.fence_fn = None
        #: Installed by the cluster when sequencer replication is on:
        #: maps a stripe key to the node currently running its DLM (the
        #: standby after a failover).  None keeps the classic co-located
        #: local RPC.
        self.dlm_node_fn = None
        #: Retry policy + rng for mSN queries when ``dlm_node_fn`` is set
        #: — a query in flight to a dying sequencer must time out and be
        #: re-routed to the promoted standby, not hang the cleaner.
        self.msn_retry = None
        self.msn_rng = None

    # -------------------------------------------------------------- dispatch
    def _handle(self, req: Request):
        msg = req.payload
        if isinstance(msg, IoWriteMsg):
            if self.fence_fn is not None and msg.client_name:
                floor = self.fence_fn(msg.client_name, msg.incarnation)
                if floor is not None:
                    # Zombie flush from an evicted incarnation: reject
                    # before a single byte touches the extent cache or
                    # store — the locks covering it were reclaimed.
                    self.stats.fenced_writes += 1
                    req.respond(FencedMsg(msg.client_name, msg.incarnation,
                                          floor), nbytes=CTRL_MSG_BYTES)
                    return None
            return self._write(req, msg)
        if isinstance(msg, IoReadMsg):
            return self._read(req, msg)
        if isinstance(msg, IoTruncateMsg):
            return self._truncate(req, msg)
        if isinstance(msg, IoSizeMsg):
            req.respond(self.store.size(msg.stripe_key))
            return None
        raise TypeError(f"unexpected IO payload {msg!r}")  # pragma: no cover

    # ----------------------------------------------------------------- write
    def _write(self, req: Request, msg: IoWriteMsg) -> Generator:
        self.stats.write_rpcs += 1
        device_bytes = 0
        log_bytes = 0
        for block in msg.blocks:
            self.stats.blocks_received += 1
            self.stats.bytes_received += block.length
            updates = self.extent_cache.merge(
                msg.stripe_key, block.offset, block.offset + block.length,
                block.sn)
            kept = 0
            # One memoryview per block: update slices are zero-copy views.
            mv = (memoryview(block.data)
                  if self.track_content and block.data is not None else None)
            digest = (self.digests.get(msg.stripe_key, 0)
                      if self._checksum else 0)
            for s, e in updates:
                kept += e - s
                if mv is not None:
                    self.store.write(msg.stripe_key, s,
                                     mv[s - block.offset:e - block.offset])
                else:
                    # Still track sizes for sparse/perf runs.
                    obj = self.store.object(msg.stripe_key)
                    obj.size = max(obj.size, e)
                    if self._checksum:
                        digest = fold_update(
                            digest, s, e, block.sn,
                            payload_crc(block.data[s - block.offset:
                                                   e - block.offset])
                            if block.data is not None else 0)
            if self._checksum:
                self.digests[msg.stripe_key] = digest
            self.stats.bytes_discarded += block.length - kept
            device_bytes += kept
            if self.extent_log is not None:
                log_bytes += self.extent_log.append(msg.stripe_key, updates,
                                                    block.sn)
        yield self.device.write(device_bytes + log_bytes)
        req.respond("ack", nbytes=CTRL_MSG_BYTES)

    # ------------------------------------------------------------------ read
    def _read(self, req: Request, msg: IoReadMsg) -> Generator:
        self.stats.read_rpcs += 1
        yield self.device.read(msg.length)
        data = None
        if self.track_content:
            data = self.store.read(msg.stripe_key, msg.offset, msg.length)
        req.respond(data, nbytes=msg.length + CTRL_MSG_BYTES)

    def _truncate(self, req: Request, msg: IoTruncateMsg) -> Generator:
        yield self.device.write(0)
        self.store.object(msg.stripe_key).truncate(msg.size)
        emap = self.extent_cache.map_for(msg.stripe_key)
        emap.drop_where(lambda s, e, sn: s >= msg.size)
        req.respond("ack")

    # -------------------------------------------------- extent-cache hooks
    def _query_msn(self, stripe_key: Hashable, extents) -> Generator:
        """Local RPC to the co-located DLM service (stripe and lock
        resource share an identifier and a node, Fig. 13).  With an HA
        cluster (``dlm_node_fn`` installed) the query instead retries
        against whichever node currently runs the stripe's sequencer, so
        cache cleaning survives a failover."""
        if self.dlm_node_fn is None:
            reply = yield rpc_call(self.node, self.node, "dlm",
                                   MsnQueryMsg(stripe_key, extents))
            return reply
        while True:
            reply = yield from rpc_call_retry(
                self.node, self.dlm_node_fn(stripe_key), "dlm",
                MsnQueryMsg(stripe_key, extents),
                policy=self.msn_retry, rng=self.msn_rng,
                dst_fn=lambda: self.dlm_node_fn(stripe_key))
            if isinstance(reply, WrongShardMsg):
                # The query raced a shard migration's drain window (the
                # authoritative map re-resolves after the epoch bump);
                # each pass costs a full RPC round trip, so the loop is
                # wire-paced until the migration commits.
                continue
            return reply

    def _force_sync(self, stripe_key: Hashable) -> Generator:
        """Acquire (and drop) a whole-range read lock to drain every
        client's dirty data for the stripe, then truncate its log."""
        if self.local_lock_client is None:
            return
        lock = yield from self.local_lock_client.lock(
            stripe_key, ((0, EOF),), LockMode.PR, for_write=False)
        self.local_lock_client.unlock(lock)
        yield from self.local_lock_client.cancel_all()
        if self.extent_log is not None:
            self.extent_log.truncate(stripe_key)

    # ---------------------------------------------------------------- crash
    def crash(self) -> None:
        """Volatile state vanishes; durable state (block store contents,
        the extent log) survives — the §IV-C2 model."""
        self.node.failed = True
        self.extent_cache.clear()
        self.service.reset_dedup()

    def recover(self) -> None:
        self.node.failed = False
        if self.extent_log is not None:
            for key in self.extent_log.stripe_keys():
                self.extent_cache.install(key, self.extent_log.replay(key))
