"""Optional per-stripe extent log (Fig. 15 step ④, §IV-C2).

The data server can record every update-set entry it applies into an
append-only log.  After a crash, replaying the log rebuilds the extent
cache so SN filtering keeps working for in-flight redo traffic.  The log
is truncated when a forced global sync guarantees no stale flushes can
arrive (§IV-B method 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from repro.dlm.extent import ExtentMap

__all__ = ["ExtentLog", "LOG_ENTRY_BYTES"]

#: Paper: "Each entry consists of an extent and its newest SN and has a
#: size of 48 bytes."
LOG_ENTRY_BYTES = 48


@dataclass
class ExtentLog:
    """Append-only update-set journal for all stripes of one server."""

    def __init__(self):
        self._logs: Dict[Hashable, List[Tuple[int, int, int]]] = {}
        self.entries_appended = 0

    def append(self, stripe_key: Hashable,
               updates: List[Tuple[int, int]], sn: int) -> int:
        """Record an update set; returns the bytes that must hit the
        device for the log write."""
        log = self._logs.setdefault(stripe_key, [])
        for s, e in updates:
            log.append((s, e, sn))
        self.entries_appended += len(updates)
        return len(updates) * LOG_ENTRY_BYTES

    def truncate(self, stripe_key: Hashable) -> None:
        """Discard a stripe's log after a forced global sync (§IV-B)."""
        self._logs.pop(stripe_key, None)

    def entry_count(self, stripe_key: Hashable) -> int:
        return len(self._logs.get(stripe_key, ()))

    def stripe_keys(self):
        return list(self._logs.keys())

    def max_sn(self, stripe_key: Hashable) -> int:
        """Highest SN durably recorded for a stripe (0 when none).

        Recovery must restart the stripe's sequencer above this: a lock
        released before the crash is reported by no client, so the log is
        the only proof its SN was ever issued — reusing it would let new
        writes lose SN filtering against the pre-crash data (§IV-C2).
        """
        return max((sn for _s, _e, sn in self._logs.get(stripe_key, ())),
                   default=0)

    def replay(self, stripe_key: Hashable) -> ExtentMap:
        """Rebuild the stripe's extent cache from the log (§IV-C2)."""
        emap = ExtentMap()
        for s, e, sn in self._logs.get(stripe_key, ()):
            emap.merge(s, e, sn)
        return emap
