"""ccPFS — the client-cache-coherent burst-buffer PFS of §IV.

Assembly (Fig. 13): an external metadata service provides the namespace;
files are split into stripes; each data server runs an IO service for its
stripes and a DLM service for the co-located lock resources (stripe and
lock resource share the same identifier); clients cache data in a page
cache whose coherence is guaranteed by the configured DLM.

Public entry point: build a :class:`~repro.pfs.filesystem.Cluster` from a
:class:`~repro.pfs.filesystem.ClusterConfig`, then drive it through the
POSIX-like :mod:`repro.pfs.api` (``libccPFS``) or the lower-level
:class:`~repro.pfs.client.CcpfsClient` coroutines.
"""

from repro.pfs.api import CcpfsFile, libccpfs_open
from repro.pfs.client import CcpfsClient, FileHandle
from repro.pfs.filesystem import Cluster, ClusterConfig
from repro.pfs.layout import Fragment, StripeLayout

__all__ = [
    "CcpfsClient",
    "CcpfsFile",
    "Cluster",
    "ClusterConfig",
    "FileHandle",
    "Fragment",
    "StripeLayout",
    "libccpfs_open",
]
