"""IO forwarding (IOF) — the Sunway TaihuLight deployment model (§V-E).

On TaihuLight, applications do not link libccPFS directly: their POSIX
calls are intercepted and shipped to a per-node *forwarding daemon*
whose worker threads perform the IO on ccPFS.  The paper evaluates
VPIC-IO through this stack (16 application ranks funnelled through an
8-thread daemon) and notes the funnel "decreases the parallelism" for
small writes on many stripes.

:class:`ForwardingDaemon` models the daemon: a FIFO request queue
drained by ``threads`` concurrent workers, each executing the forwarded
operation on the node's :class:`~repro.pfs.client.CcpfsClient`.
:class:`ForwardingRank` is the application side: a thin blocking façade
whose calls enqueue a request and wait for its completion event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional, Tuple

from repro.pfs.client import CcpfsClient, FileHandle
from repro.sim.core import Event, Simulator
from repro.sim.resources import Store

__all__ = ["ForwardingDaemon", "ForwardingRank", "IofStats"]


@dataclass
class IofStats:
    requests: int = 0
    completed: int = 0
    #: Cumulative time requests spent queued before a worker picked them
    #: up — the "decreased parallelism" the paper observes.
    queue_wait: float = 0.0
    busy_time: float = 0.0


@dataclass
class _Request:
    op: str
    args: Tuple
    kwargs: dict
    done: Event
    enqueued_at: float


class ForwardingDaemon:
    """Per-node IO daemon with a fixed worker-thread pool."""

    def __init__(self, client: CcpfsClient, threads: int = 8):
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.client = client
        self.sim: Simulator = client.sim
        self.threads = threads
        self.stats = IofStats()
        self._queue: Store = Store(self.sim)
        self._workers = [self.sim.spawn(self._worker(i),
                                        name=f"iofd-{i}")
                         for i in range(threads)]

    # ---------------------------------------------------------------- submit
    def submit(self, op: str, *args, **kwargs) -> Event:
        """Enqueue a forwarded operation; returns its completion event
        (value = the operation's return value)."""
        req = _Request(op=op, args=args, kwargs=kwargs,
                       done=self.sim.event(), enqueued_at=self.sim.now)
        self.stats.requests += 1
        self._queue.put(req)
        return req.done

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # ---------------------------------------------------------------- worker
    def _worker(self, _idx: int) -> Generator:
        while True:
            req: _Request = yield self._queue.get()
            self.stats.queue_wait += self.sim.now - req.enqueued_at
            t0 = self.sim.now
            method = getattr(self.client, req.op)
            try:
                result = yield self.sim.spawn(
                    method(*req.args, **req.kwargs))
            except Exception as exc:  # forward errors to the caller
                self.stats.busy_time += self.sim.now - t0
                self.stats.completed += 1
                req.done.fail(exc)
                continue
            self.stats.busy_time += self.sim.now - t0
            self.stats.completed += 1
            req.done.succeed(result)


class ForwardingRank:
    """One application rank talking to the node's forwarding daemon.

    Mirrors the :class:`~repro.pfs.client.CcpfsClient` coroutine API;
    each call blocks until the daemon completes the forwarded request,
    exactly like an intercepted POSIX call.
    """

    def __init__(self, daemon: ForwardingDaemon):
        self.daemon = daemon

    def open(self, path: str, **kw) -> Generator:
        fh = yield self.daemon.submit("open", path, **kw)
        return fh

    def write(self, fh: FileHandle, offset: int, data=None,
              nbytes: Optional[int] = None, **kw) -> Generator:
        n = yield self.daemon.submit("write", fh, offset, data=data,
                                     nbytes=nbytes, **kw)
        return n

    def read(self, fh: FileHandle, offset: int, nbytes: int,
             **kw) -> Generator:
        data = yield self.daemon.submit("read", fh, offset, nbytes, **kw)
        return data

    def append(self, fh: FileHandle, data=None,
               nbytes: Optional[int] = None) -> Generator:
        off = yield self.daemon.submit("append", fh, data=data,
                                       nbytes=nbytes)
        return off

    def fsync(self, fh: FileHandle) -> Generator:
        yield self.daemon.submit("fsync", fh)

    def truncate(self, fh: FileHandle, size: int) -> Generator:
        yield self.daemon.submit("truncate", fh, size)
