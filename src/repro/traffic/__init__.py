"""Open-loop traffic generation and admission-control experiments.

See :mod:`repro.traffic.arrivals` for the seeded arrival processes and
:mod:`repro.traffic.engine` for the engine that drives a cluster with
them.
"""

from repro.traffic.arrivals import (
    ARRIVAL_KINDS,
    BurstyArrivals,
    PoissonArrivals,
    RampArrivals,
    make_arrivals,
)
from repro.traffic.engine import TrafficConfig, TrafficResult, run_traffic

__all__ = [
    "ARRIVAL_KINDS",
    "BurstyArrivals",
    "PoissonArrivals",
    "RampArrivals",
    "TrafficConfig",
    "TrafficResult",
    "make_arrivals",
    "run_traffic",
]
