"""The open-loop traffic engine: seeded arrivals driving the cluster.

Multiplexes a large logical user population (``users``) onto
``num_clients`` simulated client nodes: a single seeded arrival process
(see :mod:`repro.traffic.arrivals`) generates request instants, each
request is assigned to a user, and the user hashes to the client node
that executes it.  Clients run *open loop* — a request's arrival time
does not depend on how fast earlier requests finished — so offered load
can exceed the lock servers' OPS capacity (§V-A, 213 kOPS) and the run
measures what happens past saturation:

* each client node has a bounded work queue (``client_queue_limit``);
  arrivals landing on a full client are **dropped at the door** (the
  client-side analogue of server admission control);
* with :class:`~repro.net.rpc.AdmissionConfig` set, the servers bound
  their request queues too and refuse the excess with retry-after
  hints, which the clients honor through their retry policy;
* every request's **sojourn time** (arrival to completion, queueing
  included) lands in a histogram with exact p50/p95/p99.

The SLO accounting — offered vs. accepted vs. completed load, drops,
failures, goodput — lives in ``traffic.*`` registry metrics, so it
folds into the run's :class:`~repro.metrics.MetricsSnapshot` and the
whole report is byte-identical across reruns of the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import DictConfigMixin
from repro.net.rpc import AdmissionConfig, RetryPolicy, RpcTimeoutError
from repro.pfs import Cluster, ClusterConfig
from repro.sim.resources import Store
from repro.sim.rng import DeterministicRNG
from repro.traffic.arrivals import make_arrivals

__all__ = ["TrafficConfig", "TrafficResult", "run_traffic"]

#: Terminates a client worker once the arrival process is exhausted.
_DONE = object()


@dataclass
class TrafficConfig(DictConfigMixin):
    """One open-loop traffic run."""

    dlm: str = "seqdlm"
    seed: int = 0
    #: Arrival shape: ``poisson`` | ``bursty`` | ``ramp``.
    arrival: str = "poisson"
    #: Mean offered load, requests per simulated second.
    rate: float = 2000.0
    #: Length of the arrival window (simulated seconds); in-flight
    #: requests are drained after it closes.
    duration: float = 0.5
    #: Logical user population multiplexed onto the client nodes.
    users: int = 10_000
    num_clients: int = 8
    num_servers: int = 1
    #: Bytes moved per request.
    xfer: int = 16 * 1024
    #: Fraction of requests that read instead of write.
    read_fraction: float = 0.0
    stripes: int = 1
    #: Distinct files the user population spreads over (request's file is
    #: ``user % num_files``).  1 keeps the classic single shared file;
    #: large values (the ``ext_shard_scale`` experiment runs 10^5) spread
    #: the lock namespace wide enough to exercise sharded placement.
    num_files: int = 1
    #: Bound on each client node's pending-work queue; arrivals beyond
    #: it are dropped (counted, not queued).
    client_queue_limit: int = 256
    #: Concurrent worker coroutines per client node (a multi-threaded
    #: application): bounds the node's outstanding requests.
    workers_per_client: int = 4
    #: Extra keyword overrides for the arrival process (e.g.
    #: ``{"high_factor": 3.0}`` for harder bursts).
    arrival_overrides: dict = field(default_factory=dict)
    #: Server-side admission control; None leaves server queues
    #: unbounded (the ``block`` baseline).
    admission: Optional[AdmissionConfig] = AdmissionConfig()
    #: Client retry policy (required by admission; defaulted if unset).
    retry: Optional[RetryPolicy] = None
    cluster: Optional[ClusterConfig] = None

    def __post_init__(self):
        if self.duration <= 0 or self.rate <= 0:
            raise ValueError("rate and duration must be > 0")
        if self.users < 1 or self.num_clients < 1:
            raise ValueError("users and num_clients must be >= 1")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.client_queue_limit < 1:
            raise ValueError("client_queue_limit must be >= 1")
        if self.workers_per_client < 1:
            raise ValueError("workers_per_client must be >= 1")
        if self.num_files < 1:
            raise ValueError("num_files must be >= 1")

    def cluster_config(self) -> ClusterConfig:
        cfg = self.cluster or ClusterConfig()
        cfg.dlm = self.dlm
        cfg.seed = self.seed
        cfg.num_clients = self.num_clients
        cfg.num_data_servers = self.num_servers
        if cfg.content_mode is None:
            cfg.content_mode = "off"  # traffic runs are pure performance
        if cfg.retry is None:
            cfg.retry = self.retry or RetryPolicy()
        if self.admission is not None:
            cfg.admission = self.admission
        return cfg


@dataclass
class TrafficResult:
    """SLO report of one traffic run (also folded into ``metrics``)."""

    config: TrafficConfig
    #: Requests generated by the arrival process.
    offered: int
    #: Requests that fit in a client queue (offered - dropped_client).
    accepted: int
    #: Arrivals dropped at a full client queue.
    dropped_client: int
    #: Requests that finished their IO.
    completed: int
    #: Requests that exhausted their retries (RpcTimeoutError).
    failed: int
    #: Requests refused by server admission control ("reject" policy).
    rejected_server: int
    #: Queued requests displaced by "shed-oldest" admission control.
    shed_server: int
    #: Exact sojourn-time percentiles (arrival -> completion, seconds).
    sojourn_p50: float
    sojourn_p95: float
    sojourn_p99: float
    #: Completed requests per second over the whole run (simulated).
    goodput: float
    #: Simulated span from first arrival to last completion.
    makespan: float
    metrics: Dict = field(default_factory=dict)
    resilience: Dict[str, int] = field(default_factory=dict)
    cluster: Optional[Cluster] = field(default=None, repr=False)

    @property
    def offered_rate(self) -> float:
        return self.offered / self.config.duration

    @property
    def completion_ratio(self) -> float:
        return self.completed / self.offered if self.offered else 0.0


def run_traffic(config: TrafficConfig) -> TrafficResult:
    """Build a cluster and drive one open-loop traffic run."""
    cluster = Cluster(config.cluster_config())
    sim = cluster.sim
    reg = sim.metrics
    cfg = cluster.config

    offered = reg.counter("traffic.offered", owner="traffic")
    accepted = reg.counter("traffic.accepted", owner="traffic")
    dropped = reg.counter("traffic.dropped_client", owner="traffic")
    completed = reg.counter("traffic.completed", owner="traffic")
    failed = reg.counter("traffic.failed", owner="traffic")
    sojourn = reg.histogram("traffic.sojourn_time", unit="seconds",
                            owner="traffic")
    queue_wait = reg.histogram("traffic.client_queue_wait", unit="seconds",
                               owner="traffic")
    service = reg.histogram("traffic.service_time", unit="seconds",
                            owner="traffic")

    if config.num_files == 1:
        cluster.create_file("/traffic", stripe_count=config.stripes)
    else:
        for i in range(config.num_files):
            cluster.create_file(f"/traffic{i}", stripe_count=config.stripes)
    #: Users fold onto this many distinct xfer-aligned offsets, so each
    #: file stays bounded and users contend for overlapping lock ranges.
    span = max(1, (config.stripes * cfg.stripe_size) // config.xfer)

    arrivals = make_arrivals(config.arrival, config.rate,
                             **config.arrival_overrides)
    rng = DeterministicRNG(config.seed, "traffic")
    arrival_rng = rng.stream("arrivals")
    user_rng = rng.stream("users")
    op_rng = rng.stream("ops")

    queues: List[Store] = [Store(sim) for _ in range(config.num_clients)]
    first_arrival = [None]

    def generator():
        for t in arrivals.times(arrival_rng, config.duration):
            gap = t - sim.now
            if gap > 0:
                yield gap
            user = user_rng.integers(0, config.users)
            is_read = (config.read_fraction > 0
                       and op_rng.uniform() < config.read_fraction)
            offered.inc()
            if first_arrival[0] is None:
                first_arrival[0] = sim.now
            q = queues[user % config.num_clients]
            if len(q) >= config.client_queue_limit:
                dropped.inc()
                continue
            accepted.inc()
            q.put((sim.now, user, is_read))
        for q in queues:
            for _ in range(config.workers_per_client):
                q.put(_DONE)

    def worker(idx: int):
        c = cluster.clients[idx]
        q = queues[idx]
        # Classic single-file runs pre-open the shared file (the original
        # code path, event-for-event); multi-file runs open lazily per
        # file — opening 10^5 handles up front per worker would swamp the
        # metadata service before the first arrival.
        handles: Dict[int, object] = {}
        if config.num_files == 1:
            handles[0] = yield from c.open("/traffic")
        while True:
            item = yield q.get()
            if item is _DONE:
                return
            arrived, user, is_read = item
            started = sim.now
            queue_wait.observe(started - arrived)
            fidx = user % config.num_files
            fh = handles.get(fidx)
            if fh is None:
                fh = yield from c.open(f"/traffic{fidx}")
                handles[fidx] = fh
            # Decorrelate the slot from the user -> client mapping
            # (plain ``user % span`` would give each client a disjoint
            # slot set, so no two clients would ever contend).
            offset = ((user // config.num_clients) % span) * config.xfer
            try:
                if is_read:
                    yield from c.read(fh, offset, config.xfer)
                else:
                    yield from c.write(fh, offset, nbytes=config.xfer)
            except RpcTimeoutError:
                failed.inc()
            else:
                completed.inc()
                service.observe(sim.now - started)
                sojourn.observe(sim.now - arrived)

    cluster.run_clients(
        [generator()] + [worker(i) for i in range(config.num_clients)
                         for _ in range(config.workers_per_client)])

    start = first_arrival[0] if first_arrival[0] is not None else 0.0
    makespan = max(0.0, sim.now - start)
    goodput = completed.value / makespan if makespan > 0 else 0.0
    reg.gauge("traffic.goodput", unit="ops/s", owner="traffic").set(goodput)
    reg.gauge("traffic.offered_rate", unit="ops/s", owner="traffic").set(
        offered.value / config.duration)

    rejected = sum(s.admission_rejected for s in _services(cluster))
    shed = sum(s.admission_shed for s in _services(cluster))
    return TrafficResult(
        config=config,
        offered=offered.value, accepted=accepted.value,
        dropped_client=dropped.value, completed=completed.value,
        failed=failed.value,
        rejected_server=rejected, shed_server=shed,
        sojourn_p50=sojourn.percentile(0.50),
        sojourn_p95=sojourn.percentile(0.95),
        sojourn_p99=sojourn.percentile(0.99),
        goodput=goodput, makespan=makespan,
        metrics=cluster.metrics_snapshot().to_dict(),
        resilience=cluster.resilience_counters(),
        cluster=cluster)


def _services(cluster: Cluster):
    yield cluster.metadata.service
    for ds in cluster.data_servers:
        yield ds.service
    for ls in cluster.lock_servers:
        yield ls.service
