"""Cluster network substrate.

Models the paper's 100 Gbps HDR InfiniBand fabric at the fidelity the
analytical model in §II-C requires: per-message propagation latency
(RTT/2 each way), per-NIC bandwidth serialization on both the egress and
ingress side (so flush traffic into one data server contends exactly like
the paper's ``B_net`` term), and an OPS-limited RPC service queue per
server (the CaRT ~213 kOPS figure).

Layers:

* :mod:`repro.net.fabric` — nodes, links, raw message delivery (plus the
  optional fault-injection hook, see :mod:`repro.faults`).
* :mod:`repro.net.rpc` — request/reply RPC with deferred responses (a lock
  server may queue a request and reply much later), one-way messages
  (revocation callbacks), and retrying calls with exponential backoff
  for runs under injected faults.
"""

from repro.net.fabric import (
    Fabric,
    Message,
    NetworkConfig,
    Node,
    UnknownServiceError,
)
from repro.net.rpc import (
    CTRL_MSG_BYTES,
    Request,
    RetryPolicy,
    RpcError,
    RpcService,
    RpcTimeoutError,
    one_way,
    rpc_call,
    rpc_call_retry,
)

__all__ = [
    "CTRL_MSG_BYTES",
    "Fabric",
    "Message",
    "NetworkConfig",
    "Node",
    "Request",
    "RetryPolicy",
    "RpcError",
    "RpcService",
    "RpcTimeoutError",
    "UnknownServiceError",
    "one_way",
    "rpc_call",
    "rpc_call_retry",
]
