"""Request/reply RPC on top of the fabric.

Mirrors the shape of the paper's CaRT stack:

* every server-side service drains its inbox through a single dispatcher
  that charges ``1/ops`` per request — this is the 213 kOPS serialization
  point measured in §V-A, and the ``1/(OPS*D)`` term of Equation (1);
* handlers run as their own simulation processes after dispatch, so a lock
  server can keep a request queued for an arbitrary time (normal grant
  waiting on a conflicting lock) without blocking unrelated requests;
* responses are explicit (:meth:`Request.respond`), supporting both the
  immediate-reply style (data-server IO) and the deferred-grant style
  (lock servers).

One-way messages (server -> client revocation callbacks) use the same
machinery with ``expects_reply=False``.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Tuple, Union

from repro.config import DictConfigMixin
from repro.net.fabric import Fabric, Message, Node, UnknownServiceError
from repro.sim.core import Event, Interrupt, SimulationError, Simulator
from repro.sim.resources import Store

__all__ = ["RpcError", "RpcTimeoutError", "RetryPolicy", "AdmissionConfig",
           "Rejected", "Request", "RpcService", "rpc_call",
           "rpc_call_retry", "one_way", "CTRL_MSG_BYTES",
           "ADMISSION_POLICIES"]

#: Size charged for small control messages (lock requests, grants,
#: revocations, releases).  Matches the order of magnitude of a CaRT header
#: plus a lock descriptor.
CTRL_MSG_BYTES = 256


class RpcError(RuntimeError):
    """Protocol-level RPC failure (double respond, missing service...)."""


class RpcTimeoutError(RpcError):
    """A retrying RPC exhausted its attempts without seeing a reply."""


@dataclass(frozen=True)
class RetryPolicy(DictConfigMixin):
    """Client-side timeout/retry behaviour for :func:`rpc_call_retry`.

    Timeouts grow exponentially (``timeout * backoff**attempt``, capped
    at ``max_timeout``) with optional ±``jitter`` randomization so
    retrying clients do not stampede a recovering server in lockstep.
    Retries resend the *same* ``req_id``, which is what lets servers
    suppress duplicates and lets a late reply to any earlier attempt
    complete the call.
    """

    #: First-attempt timeout in simulated seconds.
    timeout: float = 2.0e-3
    #: Multiplier applied per retry (1.0 = constant timeout).
    backoff: float = 2.0
    #: Upper bound on a single attempt's timeout.
    max_timeout: float = 5.0e-2
    #: Number of *re*-sends after the first attempt.
    max_retries: int = 24
    #: Fractional ± jitter on each timeout (0 disables; needs an rng).
    jitter: float = 0.0

    def __post_init__(self):
        if self.timeout <= 0 or self.backoff < 1.0 or self.max_retries < 0:
            raise ValueError("timeout > 0, backoff >= 1, max_retries >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def timeout_for(self, attempt: int, rng=None) -> float:
        t = min(self.timeout * self.backoff ** attempt, self.max_timeout)
        if self.jitter and rng is not None:
            t *= 1.0 + self.jitter * (2.0 * rng.uniform() - 1.0)
        return t


#: Valid ``AdmissionConfig.policy`` values.
ADMISSION_POLICIES = ("reject", "shed-oldest", "block")


@dataclass(frozen=True)
class AdmissionConfig(DictConfigMixin):
    """Server-side admission control: bound a service's request queue.

    An open-loop workload can offer more load than a server's OPS limit
    can drain; without admission control the inbox grows without bound
    and every request's sojourn time diverges.  With a ``queue_limit``
    the server sheds excess load instead:

    * ``"reject"`` — a request arriving at a full queue is refused with
      a :class:`Rejected` reply carrying a ``retry_after`` hint (the
      estimated queue-drain time), so the client backs off rather than
      hammering the server (load shedding at the door);
    * ``"shed-oldest"`` — the new request is admitted and the *oldest*
      queued request is dropped with a :class:`Rejected` reply instead
      (freshest-first under overload);
    * ``"block"`` — no bound at all; the degenerate baseline that shows
      the unbounded-latency collapse the other policies prevent.

    Rejections require the caller to use a retrying call path
    (:func:`rpc_call_retry` understands :class:`Rejected` and backs off
    by the hint); the cluster enforces that a retry policy is configured
    whenever admission control is on.
    """

    #: Maximum queued requests per admission-controlled service.
    queue_limit: int = 64
    policy: str = "reject"
    #: Which services enforce the bound (service names as registered on
    #: the node: ``"dlm"``, ``"io"``, ``"meta"``).
    services: Tuple[str, ...] = ("dlm",)
    #: Floor on the retry-after hint (an idle server still asks the
    #: client to wait at least this long before resending).
    min_retry_after: float = 1.0e-4

    def __post_init__(self):
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(f"policy must be one of {ADMISSION_POLICIES}, "
                             f"got {self.policy!r}")
        if self.min_retry_after <= 0:
            raise ValueError("min_retry_after must be > 0")


@dataclass(frozen=True)
class Rejected:
    """Reply payload for a request refused by admission control."""

    #: Name of the refusing service.
    service: str
    #: Server's estimate of when retrying is worthwhile (seconds from
    #: now): queue-drain time at the service's OPS limit.
    retry_after: float


class Request:
    """A server-side view of one inbound RPC."""

    __slots__ = ("service", "msg", "_responded")

    def __init__(self, service: "RpcService", msg: Message):
        self.service = service
        self.msg = msg
        self._responded = False

    @property
    def payload(self) -> Any:
        return self.msg.payload

    @property
    def src(self) -> Node:
        return self.msg.src

    @property
    def sim(self) -> Simulator:
        return self.service.sim

    @property
    def responded(self) -> bool:
        return self._responded

    def respond(self, payload: Any = None,
                nbytes: int = CTRL_MSG_BYTES) -> None:
        """Send the reply back to the caller."""
        if self._responded:
            raise RpcError("request already responded to")
        self._responded = True
        if self.msg.req_id < 0:
            return  # one-way message: nothing to send back
        self.service._record_reply(self.msg, payload, nbytes)
        fabric = self.service.node.fabric
        reply = Message(src=self.service.node, dst=self.msg.src,
                        service=self.msg.service, payload=payload,
                        nbytes=nbytes, is_reply=True,
                        req_id=self.msg.req_id)
        fabric.send(reply)


#: A handler either returns nothing / a generator; generators may return a
#: ``(payload, nbytes)`` tuple as an implicit respond.
Handler = Callable[[Request], Union[None, Generator]]


#: Dedup-cache sentinel: the request is dispatched but not yet responded.
_IN_PROGRESS = object()


class RpcService:
    """An OPS-limited service attached to a node.

    With ``dedup`` enabled the service suppresses duplicate requests
    (same source node + ``req_id``): retransmissions of an in-progress
    request are dropped (the original will reply), and retransmissions
    of an already-answered request get the cached reply resent without
    re-running the handler.  This is what makes client-side retries safe
    for non-idempotent handlers (a retried lock request must not be
    granted twice).  Off by default: clean runs never produce duplicate
    ``req_id``s, so the bookkeeping would be pure overhead.

    The table is bounded two ways: a hard entry cap (``dedup_capacity``,
    oldest evicted first) and a time-to-live (``dedup_ttl``) after which
    answered entries expire.  The TTL must comfortably exceed the longest
    client retry span (worst case ``sum(policy.timeout_for(i))``, ~2 s
    for the chaos-suite policy) — expiring earlier would let a very late
    retransmission re-execute a non-idempotent handler.  In-progress
    entries never expire: the handler may legitimately defer its reply
    for a long time (a queued lock request).
    """

    def __init__(self, node: Node, name: str, handler: Handler,
                 ops: float = float("inf"), cost_fn=None,
                 dedup: bool = False, dedup_capacity: int = 8192,
                 dedup_ttl: Optional[float] = 5.0,
                 admission: Optional[AdmissionConfig] = None):
        if ops <= 0:
            raise RpcError(f"ops must be > 0, got {ops}")
        self.node = node
        self.sim: Simulator = node.sim
        self.name = name
        self.handler = handler
        self.service_time = 0.0 if ops == float("inf") else 1.0 / ops
        #: Optional per-message dispatch-cost weight (1.0 = one full RPC).
        #: The measured OPS of an RPC stack is for request-reply round
        #: trips; one-way notifications are cheaper to dispatch.
        self.cost_fn = cost_fn
        self.inbox: Store = Store(self.sim)
        self.requests_handled = 0
        self.duplicates_suppressed = 0
        self.dedup_expired = 0
        self.messages_enqueued = 0
        self.messages_dequeued = 0
        self.queue_depth_max = 0
        #: Optional bounded-queue policy; None = classic unbounded inbox.
        self.admission = admission
        self.admission_rejected = 0
        self.admission_shed = 0
        #: Cumulative simulated dispatch time (weight * 1/OPS per message)
        #: — busy/elapsed is the OPS-saturation ratio of Equation (1).
        self.busy_time = 0.0
        #: Enqueue instants, parallel to the FIFO inbox, feeding the
        #: queue-wait histogram (covers fault-delayed deliveries, which
        #: ``Message.deliver_time`` does not).
        self._enqueue_times: deque = deque()
        reg = getattr(self.sim, "metrics", None)
        self._wait_hist = (reg.histogram(f"rpc.{name}.wait_time",
                                         unit="seconds", owner="net.rpc")
                           if reg is not None else None)
        self._dedup: Optional[OrderedDict] = None
        self._dedup_capacity = dedup_capacity
        self._dedup_ttl = dedup_ttl
        if dedup:
            self.enable_dedup(dedup_capacity, dedup_ttl)
        self.halted = False
        node.register_service(name, self._enqueue)
        self._dispatcher = self.sim.spawn(self._dispatch(),
                                          name=f"{node.name}/{name}")

    def halt(self) -> None:
        """Permanently stop the dispatcher (fail-stop node kill).

        Queued and future messages are never dispatched again; the
        service's counters are left intact for post-mortem metrics.
        Idempotent, and safe whether the dispatcher is idle on the inbox
        or mid-dispatch charging service time.
        """
        if self.halted:
            return
        self.halted = True
        try:
            self._dispatcher.interrupt("halt")
        except SimulationError:
            pass  # already terminated (simulation winding down)

    def _enqueue(self, msg: Message) -> None:
        adm = self.admission
        if (adm is not None and adm.policy != "block"
                and len(self.inbox) >= adm.queue_limit):
            if adm.policy == "reject":
                self.admission_rejected += 1
                self._send_rejection(msg)
                return
            # shed-oldest: admit the newcomer, refuse the oldest queued.
            shed = self.inbox.pop_oldest()
            self._enqueue_times.popleft()
            self.admission_shed += 1
            self._send_rejection(shed)
        self.messages_enqueued += 1
        self._enqueue_times.append(self.sim.now)
        self.inbox.put(msg)
        depth = len(self.inbox)
        if depth > self.queue_depth_max:
            self.queue_depth_max = depth

    def _send_rejection(self, msg: Message) -> None:
        """Tell ``msg``'s sender to back off (no-op for one-way sends).

        The hint is the deterministic queue-drain estimate: the current
        backlog (plus the refused request itself) times the per-request
        service time, floored at ``min_retry_after``.
        """
        if msg.req_id < 0:
            return
        hint = max(self.admission.min_retry_after,
                   (len(self.inbox) + 1.0) * self.service_time)
        self.node.fabric.send(Message(
            src=self.node, dst=msg.src, service=msg.service,
            payload=Rejected(service=self.name, retry_after=hint),
            nbytes=CTRL_MSG_BYTES, is_reply=True, req_id=msg.req_id))

    # ------------------------------------------------------- duplicate guard
    def enable_dedup(self, capacity: int = 8192,
                     ttl: Optional[float] = 5.0) -> None:
        if self._dedup is None:
            self._dedup = OrderedDict()
        self._dedup_capacity = capacity
        self._dedup_ttl = ttl

    def reset_dedup(self) -> None:
        """Drop the duplicate-suppression table (volatile state lost in a
        crash, §IV-C2): post-recovery retransmissions re-execute against
        the equally-reset server state."""
        if self._dedup is not None:
            self._dedup.clear()

    def _expire_dedup(self) -> None:
        """Evict answered entries older than the TTL from the front.

        Entries are (re)stamped and moved to the back when answered, so
        the front of the OrderedDict is the oldest; the scan stops at the
        first fresh or still-in-progress entry, keeping this amortized
        O(1) per request."""
        if not self._dedup or self._dedup_ttl is None:
            return
        horizon = self.sim.now - self._dedup_ttl
        while self._dedup:
            key = next(iter(self._dedup))
            value, stamp = self._dedup[key]
            if value is _IN_PROGRESS or stamp > horizon:
                break
            del self._dedup[key]
            self.dedup_expired += 1

    def _dedup_check(self, msg: Message) -> bool:
        """True if ``msg`` is a duplicate that was fully handled here."""
        if self._dedup is None or msg.req_id < 0:
            return False
        self._expire_dedup()
        key = (msg.src.name, msg.req_id)
        hit = self._dedup.get(key)
        if hit is None:
            self._dedup[key] = (_IN_PROGRESS, self.sim.now)
            while len(self._dedup) > self._dedup_capacity:
                self._dedup.popitem(last=False)
            return False
        self.duplicates_suppressed += 1
        value, _stamp = hit
        if value is not _IN_PROGRESS:
            # Answered before: the reply may have been lost — resend it.
            payload, nbytes = value
            self.node.fabric.send(Message(
                src=self.node, dst=msg.src, service=msg.service,
                payload=payload, nbytes=nbytes, is_reply=True,
                req_id=msg.req_id))
        return True

    def _record_reply(self, msg: Message, payload: Any, nbytes: int) -> None:
        if self._dedup is not None and msg.req_id >= 0:
            key = (msg.src.name, msg.req_id)
            self._dedup[key] = ((payload, nbytes), self.sim.now)
            self._dedup.move_to_end(key)

    def _dispatch(self) -> Generator:
        try:
            yield from self._dispatch_loop()
        except Interrupt:
            return  # halted: a killed sequencer dispatches nothing more

    def _dispatch_loop(self) -> Generator:
        sim = self.sim
        while True:
            msg = yield self.inbox.get()
            self.messages_dequeued += 1
            if self._wait_hist is not None:
                self._wait_hist.observe(
                    sim.now - self._enqueue_times.popleft())
            else:
                self._enqueue_times.popleft()
            if self.service_time:
                weight = self.cost_fn(msg) if self.cost_fn else 1.0
                if weight > 0:
                    cost = self.service_time * weight
                    self.busy_time += cost
                    yield cost  # direct delay: kernel fast path
            if self._dedup_check(msg):
                continue
            self.requests_handled += 1
            req = Request(self, msg)
            result = self.handler(req)
            if result is not None:
                sim.spawn(self._run_handler(req, result),
                          name=f"{self.name}-handler")

    def _run_handler(self, req: Request, gen: Generator) -> Generator:
        ret = yield self.sim.spawn(gen)
        if ret is not None and not req.responded:
            payload, nbytes = ret
            req.respond(payload, nbytes)

    @property
    def queue_depth(self) -> int:
        return len(self.inbox)


def rpc_call(src: Node, dst: Node, service: str, payload: Any,
             nbytes: int = CTRL_MSG_BYTES) -> Event:
    """Issue an RPC; returns an event that triggers with the reply payload.

    If ``dst`` has failed the request is silently dropped and the event
    never triggers — callers that must survive failures race the future
    against a timeout (see the recovery machinery in
    :mod:`repro.pfs.filesystem`).
    """
    fabric: Fabric = src.fabric
    req_id = fabric.next_req_id()
    future = src.sim.event()
    src.pending_replies[req_id] = future
    msg = Message(src=src, dst=dst, service=service, payload=payload,
                  nbytes=nbytes, req_id=req_id)
    fabric.send(msg)
    return future


#: Sentinel carried by retry timers so replies can never be confused
#: with a timeout (a reply payload could legitimately be any value).
_RETRY_TIMEOUT = object()


def rpc_call_retry(src: Node, dst: Node, service: str, payload: Any,
                   nbytes: int = CTRL_MSG_BYTES,
                   policy: Optional[RetryPolicy] = None,
                   rng=None,
                   on_retry: Optional[Callable[[int], None]] = None,
                   dst_fn: Optional[Callable[[], Node]] = None
                   ) -> Generator:
    """Issue an RPC with timeouts, exponential backoff and retries.

    A generator (use ``yield from``); returns the reply payload.  Every
    attempt resends the same ``req_id`` so server-side duplicate
    suppression applies and a late reply to *any* attempt completes the
    call; duplicate replies are already dropped by the reply router
    (``pending_replies`` pops once).

    Raises :class:`RpcTimeoutError` after ``policy.max_retries`` unheard
    resends, and :class:`~repro.net.fabric.UnknownServiceError`
    *immediately* (no backoff) when the target is alive but has
    unregistered the service — retrying a request the node can never
    dispatch would only mask a wiring bug.

    Admission-control rejections are a third outcome: a
    :class:`Rejected` reply makes the caller back off for the server's
    ``retry_after`` hint (±``policy.jitter``) before resending the same
    ``req_id``; each rejection consumes one attempt, so a persistently
    overloaded server eventually surfaces as :class:`RpcTimeoutError`.

    With ``dst_fn`` the destination is re-resolved before *every*
    attempt (``dst`` is then only a fallback).  This is the failover
    hook: a client whose lock request is parked at a sequencer that
    dies mid-wait re-routes its next retry to the promoted standby
    instead of resending into the dead node forever.
    """
    policy = policy or RetryPolicy()
    fabric: Fabric = src.fabric
    sim = src.sim
    req_id = fabric.next_req_id()
    future = sim.event()
    src.pending_replies[req_id] = future
    attempts = policy.max_retries + 1
    for attempt in range(attempts):
        if attempt and on_retry is not None:
            on_retry(attempt)
        if dst_fn is not None:
            dst = dst_fn()
        msg = Message(src=src, dst=dst, service=service, payload=payload,
                      nbytes=nbytes, req_id=req_id)
        try:
            fabric.send(msg)
        except UnknownServiceError:
            src.pending_replies.pop(req_id, None)
            raise
        timer = sim.timeout(policy.timeout_for(attempt, rng),
                            value=_RETRY_TIMEOUT)
        result = yield sim.any_of([future, timer])
        if future in result:
            value = result[future]
            if not isinstance(value, Rejected):
                return value
            # Server-side admission refusal: honor the retry-after hint,
            # then fall through to the resend.  Re-arm a fresh future
            # under the *same* req_id so a late reply to any earlier
            # attempt (the router popped the old future) still lands.
            future = sim.event()
            src.pending_replies[req_id] = future
            backoff = value.retry_after
            if policy.jitter and rng is not None:
                backoff *= 1.0 + policy.jitter * (2.0 * rng.uniform() - 1.0)
            yield backoff
    src.pending_replies.pop(req_id, None)
    raise RpcTimeoutError(
        f"rpc {service!r} to {dst.name!r} unanswered after "
        f"{attempts} attempts")


def one_way(src: Node, dst: Node, service: str, payload: Any,
            nbytes: int = CTRL_MSG_BYTES) -> None:
    """Fire-and-forget message (e.g. a revocation callback)."""
    msg = Message(src=src, dst=dst, service=service, payload=payload,
                  nbytes=nbytes, req_id=-1)
    src.fabric.send(msg)
