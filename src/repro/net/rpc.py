"""Request/reply RPC on top of the fabric.

Mirrors the shape of the paper's CaRT stack:

* every server-side service drains its inbox through a single dispatcher
  that charges ``1/ops`` per request — this is the 213 kOPS serialization
  point measured in §V-A, and the ``1/(OPS*D)`` term of Equation (1);
* handlers run as their own simulation processes after dispatch, so a lock
  server can keep a request queued for an arbitrary time (normal grant
  waiting on a conflicting lock) without blocking unrelated requests;
* responses are explicit (:meth:`Request.respond`), supporting both the
  immediate-reply style (data-server IO) and the deferred-grant style
  (lock servers).

One-way messages (server -> client revocation callbacks) use the same
machinery with ``expects_reply=False``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Union

from repro.net.fabric import Fabric, Message, Node
from repro.sim.core import Event, Simulator
from repro.sim.resources import Store

__all__ = ["RpcError", "Request", "RpcService", "rpc_call", "one_way",
           "CTRL_MSG_BYTES"]

#: Size charged for small control messages (lock requests, grants,
#: revocations, releases).  Matches the order of magnitude of a CaRT header
#: plus a lock descriptor.
CTRL_MSG_BYTES = 256


class RpcError(RuntimeError):
    """Protocol-level RPC failure (double respond, missing service...)."""


class Request:
    """A server-side view of one inbound RPC."""

    __slots__ = ("service", "msg", "_responded")

    def __init__(self, service: "RpcService", msg: Message):
        self.service = service
        self.msg = msg
        self._responded = False

    @property
    def payload(self) -> Any:
        return self.msg.payload

    @property
    def src(self) -> Node:
        return self.msg.src

    @property
    def sim(self) -> Simulator:
        return self.service.sim

    @property
    def responded(self) -> bool:
        return self._responded

    def respond(self, payload: Any = None,
                nbytes: int = CTRL_MSG_BYTES) -> None:
        """Send the reply back to the caller."""
        if self._responded:
            raise RpcError("request already responded to")
        self._responded = True
        if self.msg.req_id < 0:
            return  # one-way message: nothing to send back
        fabric = self.service.node.fabric
        reply = Message(src=self.service.node, dst=self.msg.src,
                        service=self.msg.service, payload=payload,
                        nbytes=nbytes, is_reply=True,
                        req_id=self.msg.req_id)
        fabric.send(reply)


#: A handler either returns nothing / a generator; generators may return a
#: ``(payload, nbytes)`` tuple as an implicit respond.
Handler = Callable[[Request], Union[None, Generator]]


class RpcService:
    """An OPS-limited service attached to a node."""

    def __init__(self, node: Node, name: str, handler: Handler,
                 ops: float = float("inf"), cost_fn=None):
        if ops <= 0:
            raise RpcError(f"ops must be > 0, got {ops}")
        self.node = node
        self.sim: Simulator = node.sim
        self.name = name
        self.handler = handler
        self.service_time = 0.0 if ops == float("inf") else 1.0 / ops
        #: Optional per-message dispatch-cost weight (1.0 = one full RPC).
        #: The measured OPS of an RPC stack is for request-reply round
        #: trips; one-way notifications are cheaper to dispatch.
        self.cost_fn = cost_fn
        self.inbox: Store = Store(self.sim)
        self.requests_handled = 0
        node.register_service(name, self.inbox.put)
        self._dispatcher = self.sim.spawn(self._dispatch(),
                                          name=f"{node.name}/{name}")

    def _dispatch(self) -> Generator:
        sim = self.sim
        while True:
            msg = yield self.inbox.get()
            if self.service_time:
                weight = self.cost_fn(msg) if self.cost_fn else 1.0
                if weight > 0:
                    yield sim.timeout(self.service_time * weight)
            self.requests_handled += 1
            req = Request(self, msg)
            result = self.handler(req)
            if result is not None:
                sim.spawn(self._run_handler(req, result),
                          name=f"{self.name}-handler")

    def _run_handler(self, req: Request, gen: Generator) -> Generator:
        ret = yield self.sim.spawn(gen)
        if ret is not None and not req.responded:
            payload, nbytes = ret
            req.respond(payload, nbytes)

    @property
    def queue_depth(self) -> int:
        return len(self.inbox)


def rpc_call(src: Node, dst: Node, service: str, payload: Any,
             nbytes: int = CTRL_MSG_BYTES) -> Event:
    """Issue an RPC; returns an event that triggers with the reply payload.

    If ``dst`` has failed the request is silently dropped and the event
    never triggers — callers that must survive failures race the future
    against a timeout (see the recovery machinery in
    :mod:`repro.pfs.filesystem`).
    """
    fabric: Fabric = src.fabric
    req_id = fabric.next_req_id()
    future = src.sim.event()
    src.pending_replies[req_id] = future
    msg = Message(src=src, dst=dst, service=service, payload=payload,
                  nbytes=nbytes, req_id=req_id)
    fabric.send(msg)
    return future


def one_way(src: Node, dst: Node, service: str, payload: Any,
            nbytes: int = CTRL_MSG_BYTES) -> None:
    """Fire-and-forget message (e.g. a revocation callback)."""
    msg = Message(src=src, dst=dst, service=service, payload=payload,
                  nbytes=nbytes, req_id=-1)
    src.fabric.send(msg)
