"""Nodes and raw message transport.

The timing model is deliberately the one the paper's own Equation (1)/(2)
analysis uses — a message of ``n`` bytes from ``src`` to ``dst`` costs:

* egress serialization: the sender NIC transmits at ``bandwidth`` B/s and
  is busy for earlier messages first;
* propagation: ``latency`` seconds (RTT/2);
* ingress serialization: the receiver NIC also drains at ``bandwidth`` B/s,
  so N clients flushing into one data server share that server's ingress —
  this is exactly the ``B_net`` term of ``B_flush`` in Equation (2).

Serialization is accounted with *next-free-time* bookkeeping instead of
queue processes: per the HPC-profiling guidance this keeps the per-message
cost at a couple of float ops, which matters when an experiment moves
hundreds of thousands of messages.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from heapq import heappush as _heappush
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro._compat import DATACLASS_KW
from repro.sim.core import Event, SimulationError, Simulator

__all__ = ["NetworkConfig", "Message", "Node", "Fabric",
           "UnknownServiceError"]


class UnknownServiceError(KeyError):
    """The target node is alive but has no handler for the service.

    Raised synchronously by :meth:`Fabric.send` so the failure surfaces
    in the *sender* (like a connection refused) instead of exploding out
    of the event loop at delivery time.  A *failed* node still swallows
    messages silently — senders of those time out and retry (§IV-C2).
    """

    def __init__(self, node: str, service: str):
        super().__init__(f"node {node!r} has no service {service!r}")
        self.node = node
        self.service = service

    def __str__(self) -> str:
        return self.args[0]


@dataclass(frozen=True)
class NetworkConfig:
    """Fabric-wide timing parameters (defaults follow the paper's Table I
    and §V-A measured figures)."""

    #: One-way propagation latency in seconds (Table I RTT = 1 us round trip
    #: for raw verbs; the paper's CaRT RPC stack is slower, which is captured
    #: by the service OPS limit, not here).
    latency: float = 1.0e-6
    #: Per-NIC bandwidth in bytes/second (100 Gbps HDR ~ 12.5e9 B/s).
    bandwidth: float = 12.5e9
    #: Fixed per-message software overhead added to every delivery (host
    #: stack cost; kept tiny because CaRT OPS dominates control messages).
    per_message_overhead: float = 2.0e-7
    #: Messages at or below this size bypass the NIC serialization queue —
    #: they ride a separate virtual lane, as small control RPCs do on real
    #: InfiniBand QPs (a 256 B lock grant does not wait behind a queued
    #: 1 MB flush).  Set to 0 to force strict single-queue NICs.
    small_message_bypass: int = 8192

    def __post_init__(self):
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")


@dataclass(**DATACLASS_KW)
class Message:
    """A unit of transport. ``nbytes`` drives timing; ``payload`` is the
    protocol object delivered verbatim (no serialization is simulated)."""

    src: "Node"
    dst: "Node"
    service: str
    payload: Any
    nbytes: int
    is_reply: bool = False
    req_id: int = -1
    send_time: float = field(default=0.0)
    deliver_time: float = field(default=0.0)


class Node:
    """A machine on the fabric: one NIC plus named message handlers.

    Handlers registered with :meth:`register_service` receive non-reply
    messages addressed to that service name.  Reply routing (for RPC
    futures) is handled by :mod:`repro.net.rpc`.
    """

    def __init__(self, fabric: "Fabric", name: str):
        self.fabric = fabric
        self.sim: Simulator = fabric.sim
        self.name = name
        self._tx_free = 0.0
        self._rx_free = 0.0
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        # RPC bookkeeping (populated by repro.net.rpc).
        self.pending_replies: Dict[int, Any] = {}
        # Traffic counters.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        #: Deliveries swallowed because this node was failed at arrival.
        self.messages_blackholed = 0
        self.failed = False

    def register_service(self, name: str,
                         handler: Callable[[Message], None]) -> None:
        if name in self._handlers:
            raise ValueError(f"service {name!r} already registered on {self.name}")
        self._handlers[name] = handler

    def unregister_service(self, name: str) -> None:
        self._handlers.pop(name, None)

    def deliver(self, msg: Message) -> None:
        """Called by the fabric when a message arrives."""
        if self.failed:
            # Dropped on the floor; senders time out / redo (§IV-C2).
            self.messages_blackholed += 1
            return
        self.bytes_received += msg.nbytes
        self.messages_received += 1
        if msg.is_reply:
            future = self.pending_replies.pop(msg.req_id, None)
            if future is not None:
                future.succeed(msg.payload)
            return
        handler = self._handlers.get(msg.service)
        if handler is None:
            raise UnknownServiceError(self.name, msg.service)
        handler(msg)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.name}>"


class Fabric:
    """The switch connecting all nodes."""

    def __init__(self, sim: Simulator, config: Optional[NetworkConfig] = None):
        self.sim = sim
        self.config = config or NetworkConfig()
        self.nodes: Dict[str, Node] = {}
        self._req_ids = itertools.count(1)
        self.messages_delivered = 0
        self.bytes_delivered = 0
        #: Delivery callbacks scheduled (injected duplicates count twice,
        #: injected drops not at all) — in-flight = scheduled - delivered.
        self.deliveries_scheduled = 0
        #: Optional :class:`repro.faults.FaultInjector`; when set, every
        #: non-local message's delivery schedule passes through it.
        self.fault_injector = None
        # Per-(src, dst) last delivery instant on the control lane: small
        # messages between one pair of nodes are FIFO (QP ordering on
        # real IB); bulk transfers ride separate QPs and may interleave.
        self._pair_last: Dict[tuple, float] = {}
        # Conservative-partition mode (repro.sim.partition): when enabled,
        # cross-partition deliveries are *parked* in per-destination
        # exchange buffers instead of entering the live schedule, and the
        # partitioned runner flushes them at window barriers.
        self._partition_of: Optional[Dict[str, int]] = None
        self._exchange: Tuple[List[tuple], ...] = ()
        #: Cross-partition deliveries parked so far (partition mode only).
        self.exchange_parked = 0

    # -- conservative-partition support ----------------------------------
    def lookahead(self) -> float:
        """Minimum cross-node delivery delay — the conservative window
        width.  Every non-local message pays at least ``latency`` plus
        ``per_message_overhead`` (the fault injector only *adds* delay),
        so events sent at ``t`` can only land at ``>= t + lookahead()``.
        """
        return self.config.latency + self.config.per_message_overhead

    def enable_partitions(self, partition_of: Dict[str, int],
                          num_partitions: int) -> None:
        """Switch the fabric into partition mode.

        ``partition_of`` maps node names to partition ids; unlisted nodes
        default to partition 0.  From here on, deliveries that cross a
        partition boundary are parked (with their final ``(time,
        priority, seq)`` schedule key, assigned at send time exactly as
        the serial kernel would) until :meth:`flush_exchange`.
        """
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self._partition_of = dict(partition_of)
        self._exchange = tuple([] for _ in range(num_partitions))

    def flush_exchange(self, min_time: Optional[float] = None) -> int:
        """Move every parked cross-partition entry onto the live schedule.

        Called at window barriers by the partitioned runner.  ``min_time``
        asserts the conservative-lookahead contract: a parked entry due
        before the previous window's horizon would mean the window
        executed events it was not allowed to see yet — a determinism
        bug, surfaced loudly instead of silently diverging.

        Returns the number of entries moved.  The entries keep the seq
        numbers they were assigned at send time, and pops always take the
        globally minimal ``(time, priority, seq)`` across lanes, so the
        processing order is byte-identical to the serial schedule.
        """
        heap = self.sim._heap
        moved = 0
        for buf in self._exchange:
            if not buf:
                continue
            for entry in buf:
                if min_time is not None and entry[0] < min_time:
                    raise SimulationError(
                        f"lookahead violation: parked delivery at "
                        f"t={entry[0]!r} precedes window horizon "
                        f"{min_time!r}")
                _heappush(heap, entry)
            moved += len(buf)
            buf.clear()
        return moved

    def add_node(self, name: str) -> Node:
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        node = Node(self, name)
        self.nodes[name] = node
        return node

    def next_req_id(self) -> int:
        return next(self._req_ids)

    def send(self, msg: Message) -> float:
        """Inject ``msg``; returns its delivery time.

        Local sends (src is dst) skip the NIC entirely: co-located client
        and server talk through memory, as in the paper's single-node
        functional tests.
        """
        sim = self.sim
        cfg = self.config
        now = sim.now
        msg.send_time = now
        src, dst = msg.src, msg.dst

        if (not msg.is_reply and not dst.failed
                and msg.service not in dst._handlers):
            raise UnknownServiceError(dst.name, msg.service)

        src.bytes_sent += msg.nbytes
        src.messages_sent += 1

        if src is dst:
            deliver_at = now + cfg.per_message_overhead
        elif msg.nbytes <= cfg.small_message_bypass:
            # Control-lane message: pays wire + latency but never queues
            # behind bulk transfers.  FIFO within the lane per node pair.
            deliver_at = (now + msg.nbytes / cfg.bandwidth + cfg.latency
                          + cfg.per_message_overhead)
            pair = (src.name, dst.name)
            deliver_at = max(deliver_at, self._pair_last.get(pair, 0.0))
            self._pair_last[pair] = deliver_at
        else:
            wire = msg.nbytes / cfg.bandwidth
            tx_start = max(now, src._tx_free)
            tx_done = tx_start + wire
            src._tx_free = tx_done
            # Cut-through: first byte reaches dst after propagation; the
            # receiver NIC then needs the wire time and may be busy.
            rx_start = max(tx_start + cfg.latency, dst._rx_free)
            rx_done = rx_start + wire
            dst._rx_free = rx_done
            deliver_at = rx_done + cfg.per_message_overhead

        msg.deliver_time = deliver_at
        injector = self.fault_injector
        if injector is not None and src is not dst:
            times = injector.deliveries(msg, deliver_at)
        else:
            times = (deliver_at,)
        part = self._partition_of
        if part is not None and src is not dst and \
                part.get(src.name, 0) != part.get(dst.name, 0):
            # Cross-partition delivery: assign the schedule key now —
            # identical seq / pending / watermark accounting to the
            # sim.timeout() path below — but park the entry in the
            # destination partition's exchange buffer for the next
            # window barrier.  Safe because deliver_at >= now +
            # lookahead() >= the current window's horizon.
            buf = self._exchange[part.get(dst.name, 0)]
            for t in times:
                self.deliveries_scheduled += 1
                self.exchange_parked += 1
                ev = Event(sim)
                ev._value = None
                ev.callbacks.append(lambda _ev, m=msg: self._deliver(m))
                sim._seq += 1
                buf.append((t, 1, sim._seq, ev))
                p = sim._pending + 1
                sim._pending = p
                if p > sim._max_queue_len:
                    sim._max_queue_len = p
            return deliver_at
        for t in times:
            self.deliveries_scheduled += 1
            ev = sim.timeout(t - now)
            ev.add_callback(lambda _ev, m=msg: self._deliver(m))
        return deliver_at

    def _deliver(self, msg: Message) -> None:
        self.messages_delivered += 1
        self.bytes_delivered += msg.nbytes
        msg.dst.deliver(msg)
