"""Dict round-tripping for the repo's config dataclasses.

Every user-facing config (:class:`~repro.pfs.filesystem.ClusterConfig`
and everything it nests) mixes in :class:`DictConfigMixin`, giving it

* ``cfg.to_dict()`` — a plain, JSON-serializable dict of the config
  tree (nested configs become nested dicts, enums become their values,
  tuples become lists, registered callables become their names);
* ``Cls.from_dict(data)`` — the exact inverse, with **unknown keys
  rejected** so a typo in a scenario file fails loudly instead of being
  silently ignored.

The invariant tests pin is ``Cls.from_dict(cfg.to_dict()) == cfg`` for
every config class.

Callables (e.g. a DLM's lock-compatibility function) cannot be
serialized by value, so they round-trip *by name* through a registry:
modules that define serializable functions call :func:`register_fn` at
import time, and ``from_dict`` resolves the stored name back to the
function object.
"""

from __future__ import annotations

import collections.abc
import dataclasses
import enum
import typing
from typing import Any, Callable, Dict, Optional, Type, TypeVar

__all__ = ["DictConfigMixin", "to_dict", "from_dict",
           "register_fn", "registered_fn"]

C = TypeVar("C")

#: Name -> function table for callables that appear in config fields.
_FN_REGISTRY: Dict[str, Callable] = {}


def register_fn(fn: Callable, name: Optional[str] = None) -> Callable:
    """Make ``fn`` serializable by name in ``to_dict``/``from_dict``.

    Usable as a decorator.  Re-registering the same function under the
    same name is a no-op; registering a *different* function under an
    existing name is an error (it would silently change what stored
    configs deserialize to).
    """
    key = name or fn.__name__
    existing = _FN_REGISTRY.get(key)
    if existing is not None and existing is not fn:
        raise ValueError(f"function name {key!r} already registered")
    _FN_REGISTRY[key] = fn
    return fn


def registered_fn(name: str) -> Callable:
    """Look up a function previously registered with :func:`register_fn`."""
    try:
        return _FN_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown function name {name!r}; known: "
            f"{sorted(_FN_REGISTRY)}") from None


# ------------------------------------------------------------------ encoding
def _encode(value: Any, where: str) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _encode(getattr(value, f.name), f"{where}.{f.name}")
                for f in dataclasses.fields(value) if f.init}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_encode(v, where) for v in value]
    if callable(value):
        name = getattr(value, "__name__", None)
        if name is not None and _FN_REGISTRY.get(name) is value:
            return name
        raise ValueError(
            f"{where}: cannot serialize unregistered callable {value!r}; "
            f"register it with repro.config.register_fn")
    return value


def to_dict(cfg: Any) -> dict:
    """Serialize a config dataclass (recursively) to a plain dict."""
    if not dataclasses.is_dataclass(cfg) or isinstance(cfg, type):
        raise TypeError(f"to_dict expects a dataclass instance, got {cfg!r}")
    return _encode(cfg, type(cfg).__name__)


# ------------------------------------------------------------------ decoding
def _decode(tp: Any, value: Any, where: str) -> Any:
    if tp is Any:
        return value
    origin = typing.get_origin(tp)
    if origin is typing.Union:
        args = typing.get_args(tp)
        if value is None and type(None) in args:
            return None
        errors = []
        for arm in args:
            if arm is type(None):
                continue
            try:
                return _decode(arm, value, where)
            except (TypeError, ValueError) as exc:
                errors.append(str(exc))
        raise ValueError(f"{where}: {value!r} matches no arm of {tp}: "
                         + "; ".join(errors))
    if dataclasses.is_dataclass(tp):
        if isinstance(value, tp):
            return value
        if not isinstance(value, dict):
            raise TypeError(
                f"{where}: expected dict for {tp.__name__}, got {value!r}")
        return from_dict(tp, value)
    if isinstance(tp, type) and issubclass(tp, enum.Enum):
        if isinstance(value, tp):
            return value
        return tp(value)
    if origin is tuple:
        args = typing.get_args(tp)
        if not isinstance(value, (list, tuple)):
            raise TypeError(f"{where}: expected sequence, got {value!r}")
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_decode(args[0], v, where) for v in value)
        return tuple(_decode(a, v, where) for a, v in zip(args, value))
    if origin is list:
        (arm,) = typing.get_args(tp)
        if not isinstance(value, (list, tuple)):
            raise TypeError(f"{where}: expected sequence, got {value!r}")
        return [_decode(arm, v, where) for v in value]
    if origin is collections.abc.Callable or tp is Callable:
        if isinstance(value, str):
            return registered_fn(value)
        if callable(value):
            return value
        raise TypeError(
            f"{where}: expected function name or callable, got {value!r}")
    if tp is float:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        raise TypeError(f"{where}: expected number, got {value!r}")
    if tp is bool:
        if isinstance(value, bool):
            return value
        raise TypeError(f"{where}: expected bool, got {value!r}")
    if isinstance(tp, type):
        if isinstance(value, tp):
            return value
        raise TypeError(
            f"{where}: expected {tp.__name__}, got {value!r}")
    return value  # unparameterized/exotic annotation: pass through


def from_dict(cls: Type[C], data: dict) -> C:
    """Build ``cls`` from a dict produced by :func:`to_dict`.

    Keys that are not init fields of ``cls`` raise ``ValueError`` — a
    stored scenario never silently drops a misspelled knob.
    """
    if not (isinstance(cls, type) and dataclasses.is_dataclass(cls)):
        raise TypeError(f"from_dict expects a dataclass type, got {cls!r}")
    if not isinstance(data, dict):
        raise TypeError(
            f"{cls.__name__}.from_dict expects a dict, got {data!r}")
    fields = {f.name for f in dataclasses.fields(cls) if f.init}
    unknown = sorted(set(data) - fields)
    if unknown:
        raise ValueError(
            f"unknown key(s) for {cls.__name__}: {', '.join(unknown)} "
            f"(valid: {', '.join(sorted(fields))})")
    hints = typing.get_type_hints(cls)
    kwargs = {name: _decode(hints[name], raw, f"{cls.__name__}.{name}")
              for name, raw in data.items()}
    return cls(**kwargs)


class DictConfigMixin:
    """Adds ``to_dict``/``from_dict`` round-tripping to a config
    dataclass; see the module docstring for the encoding rules."""

    def to_dict(self) -> dict:
        return to_dict(self)

    @classmethod
    def from_dict(cls: Type[C], data: dict) -> C:
        return from_dict(cls, data)
