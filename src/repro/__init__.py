"""SeqDLM / ccPFS — a sequencer-based distributed lock manager,
reproduced from the SC 2022 paper on a deterministic simulation substrate.

This top-level package is the **stable facade**: the names in
``__all__`` below are the supported public API, re-exported from the
subpackages that implement them.  Scripts and notebooks should import
from here —

    >>> from repro import Cluster, ClusterConfig
    >>> cluster = Cluster(ClusterConfig(num_clients=4, dlm="seqdlm"))

— while the subpackage paths (``repro.pfs.filesystem`` etc.) remain
implementation detail that may move between releases.  Every config
class on the facade round-trips through plain dicts
(``cfg.to_dict()`` / ``ClusterConfig.from_dict(d)``), so scenarios can
be stored as JSON/YAML and replayed byte-identically.

Package map
-----------

=====================  ====================================================
``repro.sim``          discrete-event kernel (processes, events, resources)
``repro.net``          fabric + OPS-limited RPC (the CaRT model),
                       retry policies and admission control
``repro.storage``      NVMe timing model + byte-accurate stripe objects
``repro.dlm``          the lock managers: SeqDLM + the three baselines
                       and the decentralized mutual-exclusion family
                       (Lamport, token tree, quorum leases) behind a
                       pluggable registry, plus the invariant validator
                       and protocol tracer
``repro.pfs``          ccPFS: cache, data servers, metadata, libccPFS API,
                       IO forwarding, burst-buffer tiering, recovery
``repro.workloads``    IOR / Tile-IO / VPIC-IO / chaos-kill drivers
``repro.traffic``      open-loop traffic engine (seeded arrivals, SLOs)
``repro.faults``       seeded fault plans (drops, outages, partitions)
``repro.analysis``     the paper's §II-C analytical model
``repro.harness``      one experiment per table/figure + extensions
``repro.cli``          ``python -m repro`` front end
=====================  ====================================================

Quick start — reproduce a figure::

    from repro import run_experiment
    print(run_experiment("fig20").render())

or drive an open-loop overload run::

    from repro import TrafficConfig, run_traffic
    print(run_traffic(TrafficConfig(rate=20_000.0)).completion_ratio)
"""

from repro.dlm import (
    DLMConfig,
    available_dlms,
    make_dlm_config,
    register_dlm,
)
from repro.dlm.config import LivenessConfig
from repro.dlm.replication import ReplicationConfig
from repro.dlm.sharding import ShardConfig, ShardMigration
from repro.faults import FaultConfig, SequencerKill
from repro.harness import EXPERIMENTS, run_experiment
from repro.net.rpc import AdmissionConfig, RetryPolicy
from repro.pfs import Cluster, ClusterConfig
from repro.traffic import TrafficConfig, TrafficResult, run_traffic
from repro.workloads import (
    ClientKillConfig,
    ClientKillResult,
    IorConfig,
    IorResult,
    SequencerKillConfig,
    SequencerKillResult,
    TileIoConfig,
    TileIoResult,
    VpicConfig,
    VpicResult,
    run_client_kill,
    run_ior,
    run_sequencer_kill,
    run_tile_io,
    run_vpic,
)

__version__ = "1.4.0"

__all__ = [
    "AdmissionConfig",
    "ClientKillConfig",
    "ClientKillResult",
    "Cluster",
    "ClusterConfig",
    "DLMConfig",
    "EXPERIMENTS",
    "FaultConfig",
    "IorConfig",
    "IorResult",
    "LivenessConfig",
    "ReplicationConfig",
    "RetryPolicy",
    "SequencerKill",
    "SequencerKillConfig",
    "SequencerKillResult",
    "ShardConfig",
    "ShardMigration",
    "TileIoConfig",
    "TileIoResult",
    "TrafficConfig",
    "TrafficResult",
    "VpicConfig",
    "VpicResult",
    "__version__",
    "available_dlms",
    "make_dlm_config",
    "register_dlm",
    "run_client_kill",
    "run_experiment",
    "run_ior",
    "run_sequencer_kill",
    "run_tile_io",
    "run_traffic",
    "run_vpic",
]
