"""SeqDLM / ccPFS — a sequencer-based distributed lock manager,
reproduced from the SC 2022 paper on a deterministic simulation substrate.

Package map
-----------

=====================  ====================================================
``repro.sim``          discrete-event kernel (processes, events, resources)
``repro.net``          fabric + OPS-limited RPC (the CaRT model)
``repro.storage``      NVMe timing model + byte-accurate stripe objects
``repro.dlm``          the lock managers: SeqDLM + the three baselines,
                       plus the invariant validator and protocol tracer
``repro.pfs``          ccPFS: cache, data servers, metadata, libccPFS API,
                       IO forwarding, burst-buffer tiering, recovery
``repro.workloads``    IOR / Tile-IO / VPIC-IO drivers
``repro.analysis``     the paper's §II-C analytical model
``repro.harness``      one experiment per table/figure + extensions
``repro.cli``          ``python -m repro`` front end
=====================  ====================================================

Quick start::

    from repro.pfs import Cluster, ClusterConfig
    cluster = Cluster(ClusterConfig(num_clients=4, dlm="seqdlm"))

or reproduce a figure::

    from repro.harness import run_experiment
    print(run_experiment("fig20").render())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
