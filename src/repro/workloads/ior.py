"""IOR-like benchmark driver (§V-C).

Runs N clients over a shared (N-1) or per-process (N-N) file with a given
transfer size and pattern, reporting exactly what the paper reports:

* **PIO time** — the wall-clock (simulated) span of the parallel write
  phase: writes return when the data is in the client cache, so this is
  "the write performance that applications can see";
* **F time** — the span of the final flush (the explicit fsync at the end
  of each test);
* **bandwidth** — total bytes divided by the PIO time.

Content tracking defaults off: IOR runs are pure-performance, the
data-safety tests cover correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import DictConfigMixin
from repro.pfs import Cluster, ClusterConfig
from repro.sim.sync import Barrier
from repro.workloads.patterns import (
    n1_segmented_offsets,
    n1_strided_offsets,
    n_n_offsets,
)

__all__ = ["IorConfig", "IorResult", "run_ior"]


@dataclass
class IorConfig(DictConfigMixin):
    """One IOR test point."""

    pattern: str = "n1-strided"     # n-n | n1-segmented | n1-strided
    clients: int = 16
    writes_per_client: int = 64
    xfer: int = 64 * 1024
    stripes: int = 1
    fsync_at_end: bool = True
    #: Run a read-back phase after the flush (the "read phase" of the
    #: paper's two-phase scientific IO model, §I): every client re-reads
    #: the blocks of the next rank (cross-client, cache-cold).
    read_phase: bool = False
    #: Data-safety mode (chaos runs): clients write rank/sequence-tagged
    #: bytes and the run ends with a durable read-back check against the
    #: expected file image.  Forces content tracking on (slower).
    verify: bool = False
    #: Attach a :class:`~repro.dlm.trace.LockTracer` to every lock server
    #: and collect the merged event list into the result.
    trace: bool = False
    cluster: Optional[ClusterConfig] = None

    def cluster_config(self) -> ClusterConfig:
        cfg = self.cluster or ClusterConfig()
        cfg.num_clients = self.clients
        if self.verify:
            # Data-safety runs need real bytes end to end.
            cfg.content_mode = "full"
        elif cfg.content_mode is None:
            # Performance runs default to no content; an explicitly
            # requested mode (e.g. "checksum") is honored.
            cfg.content_mode = "off"
        return cfg


@dataclass
class IorResult:
    config: IorConfig
    pio_time: float
    f_time: float
    bytes_written: int
    lock_stats: Dict[str, float] = field(default_factory=dict)
    client_lock_wait: float = 0.0
    client_cancel_time: float = 0.0
    client_read_rpcs: int = 0
    read_time: float = 0.0
    bytes_read: int = 0
    extent_entries_cleaned: int = 0
    extent_forced_syncs: int = 0
    extent_cache_entries: int = 0
    #: True when the post-run durable read-back matched the expected
    #: image (only set for ``verify`` runs).
    verified: Optional[bool] = None
    #: Injected-fault events of the run (``verify``/chaos runs with a
    #: fault plan attached; see :mod:`repro.faults`).
    fault_timeline: list = field(default_factory=list)
    #: The cluster the point ran on (kept for chaos-test introspection).
    cluster: Optional[Cluster] = field(default=None, repr=False)
    #: Merged lock-protocol trace (only for ``trace`` runs).
    trace_events: list = field(default_factory=list)
    #: Full metrics snapshot (``MetricsSnapshot.to_dict()``) taken at the
    #: end of the run; ``MetricsSnapshot.from_dict`` rehydrates it.
    metrics: Dict = field(default_factory=dict)
    #: The full resilience counter set (always present, zero-filled).
    resilience: Dict[str, int] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.pio_time + self.f_time

    @property
    def bandwidth(self) -> float:
        """Application-visible bandwidth (bytes/sec over PIO time)."""
        return self.bytes_written / self.pio_time if self.pio_time else 0.0

    @property
    def read_bandwidth(self) -> float:
        return self.bytes_read / self.read_time if self.read_time else 0.0

    @property
    def effective_bandwidth(self) -> float:
        """End-to-end (PIO + flush) bandwidth."""
        t = self.total_time
        return self.bytes_written / t if t else 0.0


def _pattern_bytes(rank: int, seq: int, size: int) -> bytes:
    """Rank/sequence-tagged fill, so stale or misplaced data shows up as a
    content mismatch, not just a length error."""
    tag = bytes([(rank + 1) % 256, (seq + 1) % 256])
    return (tag * ((size + 1) // 2))[:size]


def run_ior(config: IorConfig) -> IorResult:
    """Build a cluster and run one IOR test point."""
    if config.verify and not config.fsync_at_end:
        raise ValueError("verify needs fsync_at_end: the read-back oracle "
                         "checks durable content")
    cluster = Cluster(config.cluster_config())
    tracers = []
    if config.trace:
        from repro.dlm.trace import LockTracer
        tracers = [LockTracer(ls) for ls in cluster.lock_servers]
    n = config.clients
    if config.pattern == "n-n":
        paths = [f"/ior-{r}" for r in range(n)]
        for p in paths:
            cluster.create_file(p, stripe_count=config.stripes)
    else:
        cluster.create_file("/ior", stripe_count=config.stripes)
        paths = ["/ior"] * n

    barrier = Barrier(cluster.sim, n)
    pio_span = {"start": None, "end": 0.0}
    f_span = {"start": None, "end": 0.0}
    r_span = {"start": None, "end": 0.0}

    def offsets(rank: int):
        if config.pattern == "n-n":
            return n_n_offsets(config.writes_per_client, config.xfer)
        if config.pattern == "n1-segmented":
            return n1_segmented_offsets(rank, n, config.writes_per_client,
                                        config.xfer)
        if config.pattern == "n1-strided":
            return n1_strided_offsets(rank, n, config.writes_per_client,
                                      config.xfer)
        raise ValueError(f"unknown pattern {config.pattern!r}")

    def worker(rank: int):
        c = cluster.clients[rank]
        fh = yield from c.open(paths[rank])
        yield barrier.wait()
        if pio_span["start"] is None:
            pio_span["start"] = c.sim.now
        for seq, (off, size) in enumerate(offsets(rank)):
            data = _pattern_bytes(rank, seq, size) if config.verify else None
            yield from c.write(fh, off, data=data, nbytes=size)
        pio_span["end"] = max(pio_span["end"], c.sim.now)
        yield barrier.wait()  # everyone finishes PIO before flushing
        if config.fsync_at_end:
            if f_span["start"] is None:
                f_span["start"] = c.sim.now
            yield from c.fsync(fh)
            f_span["end"] = max(f_span["end"], c.sim.now)
        if config.read_phase:
            yield barrier.wait()
            if r_span["start"] is None:
                r_span["start"] = c.sim.now
            victim = (rank + 1) % n
            for off, size in offsets(victim):
                yield from c.read(fh, off, size)
            r_span["end"] = max(r_span["end"], c.sim.now)

    cluster.run_clients([worker(r) for r in range(n)])

    verified = None
    if config.verify:
        expected: Dict[str, bytearray] = {}
        for rank in range(n):
            buf = expected.setdefault(paths[rank], bytearray())
            for seq, (off, size) in enumerate(offsets(rank)):
                if len(buf) < off + size:
                    buf.extend(bytes(off + size - len(buf)))
                buf[off:off + size] = _pattern_bytes(rank, seq, size)
        for path, buf in sorted(expected.items()):
            actual = cluster.read_back(path)
            want = bytes(buf)
            if actual != want:
                at = next((i for i, (a, b) in enumerate(zip(actual, want))
                           if a != b), min(len(actual), len(want)))
                raise AssertionError(
                    f"read-back mismatch on {path}: expected {len(want)} "
                    f"bytes, got {len(actual)}; first difference at "
                    f"offset {at}")
        verified = True

    total = n * config.writes_per_client * config.xfer
    pio = (pio_span["end"] - pio_span["start"]) if pio_span["start"] is not None else 0.0
    ftime = (f_span["end"] - f_span["start"]) if f_span["start"] is not None else 0.0
    rtime = (r_span["end"] - r_span["start"]) \
        if r_span["start"] is not None else 0.0
    return IorResult(
        config=config, pio_time=pio, f_time=ftime, bytes_written=total,
        read_time=rtime,
        bytes_read=total if config.read_phase else 0,
        lock_stats=cluster.total_lock_server_stats(),
        client_lock_wait=sum(lc.stats.lock_wait_time
                             for lc in cluster.lock_clients),
        client_cancel_time=sum(lc.stats.cancel_time
                               for lc in cluster.lock_clients),
        client_read_rpcs=sum(c.stats.read_rpcs for c in cluster.clients),
        extent_entries_cleaned=sum(ds.extent_cache.entries_cleaned
                                   for ds in cluster.data_servers),
        extent_forced_syncs=sum(ds.extent_cache.forced_syncs
                                for ds in cluster.data_servers),
        extent_cache_entries=sum(ds.extent_cache.total_entries
                                 for ds in cluster.data_servers),
        verified=verified,
        fault_timeline=(list(cluster.fault_plan.timeline)
                        if cluster.fault_plan is not None else []),
        cluster=cluster,
        trace_events=sorted((e for t in tracers for e in t.events),
                            key=lambda e: e.time),
        metrics=cluster.metrics_snapshot().to_dict(),
        resilience=cluster.resilience_counters())
