"""Sequencer-kill chaos scenario: replication, failover, MTTR.

The scenario the HA subsystem exists for (docs/ha.md): N ranks do
strided 64-byte slot writes to a shared file; mid-write the lock server
(sequencer) owning the file's first stripe is fail-stopped — the DLM
service goes silent while the co-located IO service keeps running, the
worst case for lock-protected data.  The standby's probe detector
notices the silence, the cluster promotes it with an SN floor of
``max(replication watermark + 1, extent-log floor)``, clients re-assert
their held locks during the hold-off window, and every in-flight lock
RPC chases the new incumbent through its retry loop's per-attempt
destination re-resolution.

Unlike the client-kill scenario there is no victim: **every rank must
finish and every byte must read back exactly** — a failover is supposed
to be invisible to applications except as added latency.  The oracle is
therefore the strictest one: the full file image must equal the
all-pattern image, all ranks report "finished", and exactly the
configured failovers complete with a measurable MTTR (detection →
promotion → first post-failover grant).

Deterministic: two runs from the same config produce byte-identical
file images, fault timelines and MetricsSnapshots (including the
``failover.*`` keys).  Used by
``tests/property/test_chaos_sequencer_kill.py`` and
``repro chaos --kill-server``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import DictConfigMixin
from repro.dlm.config import LivenessConfig
from repro.dlm.replication import ReplicationConfig
from repro.faults import FaultConfig, SequencerKill
from repro.net.rpc import RetryPolicy
from repro.pfs import Cluster, ClusterConfig
from repro.sim.core import AllOf

__all__ = ["SequencerKillConfig", "SequencerKillResult",
           "run_sequencer_kill"]

#: One write unit; divides the stripe size so slots never straddle
#: stripes (single-lock, single-RPC slots keep the oracle exact).
SLOT = 64


def _default_retry() -> RetryPolicy:
    """A retry budget that comfortably outlives one failover: detection
    (~3 probe cycles) plus the re-assertion hold-off is well under the
    ~1 s worst-case cumulative backoff this policy allows."""
    return RetryPolicy(timeout=3.0e-3, backoff=2.0, max_timeout=5.0e-2,
                      max_retries=40, jitter=0.2)


@dataclass
class SequencerKillConfig(DictConfigMixin):
    """One kill-the-sequencer-mid-write chaos point."""

    dlm: str = "seqdlm"
    seed: int = 101
    clients: int = 4
    servers: int = 1
    #: Lock server to kill; None targets whichever server owns the
    #: shared file's first stripe (so the kill always hits live locks).
    kill_index: Optional[int] = None
    #: Simulated time of the kill — tuned to land inside the write phase.
    kill_at: float = 6.0e-3
    #: Strided slots written per rank.
    writes_per_client: int = 16
    #: Think time before each write; stretches the write phase so the
    #: kill lands inside it (the phase spans ``writes_per_client * pace``).
    pace: float = 1.0e-3
    #: Checkpoint fsync after every this many writes (0 = only at the
    #: end) — some slots are durable before the kill, some flush through
    #: the failover, exercising both sides of the SN floor.
    fsync_every: int = 4
    stripe_size: int = 1024
    page_size: int = 16
    replication: ReplicationConfig = field(
        default_factory=ReplicationConfig)
    retry: RetryPolicy = field(default_factory=_default_retry)
    #: Lease/heartbeat layer: failover must not cascade into spurious
    #: evictions, and re-assertion fencing builds on its incarnations.
    liveness: Optional[LivenessConfig] = field(
        default_factory=LivenessConfig)
    #: Extra seeded message faults on top of the kill; keep zero for the
    #: strict matrix (the exact SN-floor argument assumes replication
    #: records are not silently dropped — see docs/ha.md).
    faults: Optional[FaultConfig] = None
    #: Post-failover drain so re-assertion, fencing and final flushes
    #: settle before the oracle runs.
    drain: float = 5.0e-2
    cluster: Optional[ClusterConfig] = None

    def cluster_config(self) -> ClusterConfig:
        cfg = self.cluster or ClusterConfig()
        cfg.dlm = self.dlm
        cfg.seed = self.seed
        cfg.num_clients = self.clients
        cfg.num_data_servers = self.servers
        cfg.stripe_size = self.stripe_size
        cfg.page_size = self.page_size
        if cfg.content_mode is None:
            cfg.content_mode = "full"
        cfg.extent_log = True
        cfg.validate_locks = True
        cfg.liveness = self.liveness
        cfg.retry = self.retry
        cfg.replication = self.replication
        # The kill itself is spawned by run_sequencer_kill (the target
        # index may depend on stripe placement), but the fault plan is
        # always attached so the kill/promote events land on the
        # replayable timeline.
        cfg.faults = self.faults or FaultConfig()
        return cfg


@dataclass
class SequencerKillResult:
    config: SequencerKillConfig
    #: Worker outcome per rank (all must be "finished").
    outcomes: List[str]
    #: True when every rank finished, every byte matched, and the
    #: failover completed with a measurable MTTR.
    verified: bool
    #: One-line failure reason ("" when verified).
    reason: str
    #: Index of the killed lock server.
    killed_index: int
    #: Kill → first post-failover grant (None if recovery failed).
    mttr: Optional[float]
    detection_time: Optional[float]
    promotion_time: Optional[float]
    time_to_first_grant: Optional[float]
    #: Full per-failover records (:meth:`Cluster.failover_report`).
    failover: List[dict] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    fault_timeline: list = field(default_factory=list)
    liveness_events: list = field(default_factory=list)
    file_image: bytes = b""
    cluster: Optional[Cluster] = field(default=None, repr=False)
    #: Full metrics snapshot (``MetricsSnapshot.to_dict()``), including
    #: the ``failover.*`` MTTR keys and the replication/clone lag
    #: histograms (their p99 is the replication tail cost).
    metrics: Dict = field(default_factory=dict)


def _slot_offsets(rank: int, n: int, count: int) -> List[Tuple[int, int]]:
    """Strided layout: round r puts rank k at slot ``r*n + k``."""
    return [((r * n + rank) * SLOT, SLOT) for r in range(count)]


def _slot_bytes(rank: int, seq: int) -> bytes:
    tag = bytes([(rank + 1) % 256, (seq + 1) % 256])
    return tag * (SLOT // 2)


def run_sequencer_kill(config: SequencerKillConfig) -> SequencerKillResult:
    """Build an HA cluster, kill the sequencer mid-IOR, apply the oracle."""
    cluster = Cluster(config.cluster_config())
    sim = cluster.sim
    n = config.clients
    meta = cluster.create_file("/shared",
                               stripe_count=max(1, config.servers))
    kill_index = (config.kill_index if config.kill_index is not None
                  else cluster.server_index_for((meta.fid, 0)))
    sim.spawn(cluster._sequencer_kill_driver(
        SequencerKill(server_index=kill_index, at=config.kill_at)),
        name="seq-kill")

    def worker(rank: int):
        c = cluster.clients[rank]
        fh = yield from c.open("/shared")
        for seq, (off, _size) in enumerate(
                _slot_offsets(rank, n, config.writes_per_client)):
            yield float(config.pace)
            yield from c.write(fh, off, data=_slot_bytes(rank, seq))
            if config.fsync_every and (seq + 1) % config.fsync_every == 0:
                yield from c.fsync(fh)
        yield from c.fsync(fh)
        return "finished"

    procs = [sim.spawn(worker(rank), name=f"sk-rank{rank}")
             for rank in range(n)]
    cluster.run_until(AllOf(sim, procs))
    for p in procs:
        if not p.ok:
            raise p.value
    outcomes = [p.value for p in procs]

    # Settle re-assertion, fencing and any straggler flush retries.
    cluster.run(until=max(sim.now, config.kill_at) + config.drain)

    image = cluster.read_back("/shared")
    reason = ""
    bad = next((r for r, o in enumerate(outcomes) if o != "finished"),
               None)
    if bad is not None:
        reason = f"rank {bad} did not finish ({outcomes[bad]})"
    if not reason:
        for rank in range(n):
            for seq, (off, _size) in enumerate(
                    _slot_offsets(rank, n, config.writes_per_client)):
                got = image[off:off + SLOT].ljust(SLOT, b"\x00")
                if got != _slot_bytes(rank, seq):
                    reason = (f"byte oracle mismatch: rank {rank} slot "
                              f"{seq} at offset {off} (locks lost in "
                              f"failover?)")
                    break
            if reason:
                break

    report = cluster.failover_report()
    rec = next((r for r in report if r["index"] == kill_index), None)
    if not reason and rec is None:
        reason = (f"sequencer ds{kill_index} was never failed over "
                  f"(detector did not fire)")
    if not reason and rec["mttr"] is None:
        reason = "no post-failover grant: MTTR unmeasurable (wedged DLM?)"

    return SequencerKillResult(
        config=config,
        outcomes=outcomes,
        verified=not reason,
        reason=reason,
        killed_index=kill_index,
        mttr=rec["mttr"] if rec else None,
        detection_time=rec["detection_time"] if rec else None,
        promotion_time=rec["promotion_time"] if rec else None,
        time_to_first_grant=rec["time_to_first_grant"] if rec else None,
        failover=report,
        counters=cluster.resilience_counters(),
        fault_timeline=(list(cluster.fault_plan.timeline)
                        if cluster.fault_plan is not None else []),
        liveness_events=cluster.liveness_events(),
        file_image=image,
        cluster=cluster,
        metrics=cluster.metrics_snapshot().to_dict())
