"""VPIC-IO / h5bench workload (§V-E).

The particle-physics IO kernel: each of ``ranks`` processes writes eight
4-byte variables per particle into one shared file over several
iterations.  Within an iteration, a variable's data is laid out as one
contiguous segment per variable with per-rank contiguous sub-segments:

    offset(iter t, var v, rank p) = t*NP*32 + v*NP*4 + p*P*4

(P = particles per rank per iteration, NP = P * ranks).  Phase (2) — the
iterated parallel writes — is the PIO time; phase (3) — the final flush —
is the F time, exactly as instrumented in the paper's modified h5bench.

The IO-forwarding (IOF) deployment of the paper runs 16 application ranks
through an 8-thread forwarding daemon per node; that funnel is modelled
by a per-client concurrency semaphore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import DictConfigMixin
from repro.pfs import Cluster, ClusterConfig
from repro.pfs.iof import ForwardingDaemon, ForwardingRank
from repro.sim.sync import Barrier

__all__ = ["VpicConfig", "VpicResult", "run_vpic"]

NUM_VARS = 8
VAR_BYTES = 4


@dataclass
class VpicConfig(DictConfigMixin):
    clients: int = 4            # forwarding nodes (paper: 80)
    ranks_per_client: int = 4   # application processes per node (paper: 16)
    particles_per_rank: int = 4096   # per iteration (paper: 65,536/262,144)
    iterations: int = 4              # paper: 128/32
    stripes: int = 1
    iof_threads: Optional[int] = None  # e.g. 8 to model the IOF funnel
    cluster: Optional[ClusterConfig] = None

    @property
    def total_ranks(self) -> int:
        return self.clients * self.ranks_per_client

    @property
    def write_size(self) -> int:
        """Bytes per (rank, var, iteration) write."""
        return self.particles_per_rank * VAR_BYTES

    @property
    def total_bytes(self) -> int:
        return (self.total_ranks * self.iterations * NUM_VARS
                * self.write_size)

    def offset(self, iteration: int, var: int, rank: int) -> int:
        np_iter = self.particles_per_rank * self.total_ranks
        return (iteration * np_iter * NUM_VARS * VAR_BYTES
                + var * np_iter * VAR_BYTES
                + rank * self.write_size)

    def cluster_config(self) -> ClusterConfig:
        cfg = self.cluster or ClusterConfig()
        cfg.num_clients = self.clients
        if cfg.content_mode is None:
            cfg.content_mode = "off"
        return cfg


@dataclass
class VpicResult:
    config: VpicConfig
    pio_time: float
    f_time: float
    bytes_written: int
    lock_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.pio_time + self.f_time

    @property
    def bandwidth(self) -> float:
        return self.bytes_written / self.pio_time if self.pio_time else 0.0


def run_vpic(config: VpicConfig) -> VpicResult:
    cluster = Cluster(config.cluster_config())
    # Phase (1): create/init the shared file.
    cluster.create_file("/vpic.h5", stripe_count=config.stripes)
    n = config.clients
    barrier = Barrier(cluster.sim, config.total_ranks)
    pio_span = {"start": None, "end": 0.0}
    f_span = {"start": None, "end": 0.0}

    # IOF deployment: application ranks funnel through a per-node
    # forwarding daemon with a fixed thread pool (§V-E).
    daemons = [ForwardingDaemon(cluster.clients[i], config.iof_threads)
               if config.iof_threads else None for i in range(n)]

    def rank_proc(client_idx: int, local_rank: int):
        c = cluster.clients[client_idx]
        daemon = daemons[client_idx]
        io = ForwardingRank(daemon) if daemon is not None else c
        rank = client_idx * config.ranks_per_client + local_rank
        fh = yield from io.open("/vpic.h5")
        yield barrier.wait()
        if pio_span["start"] is None:
            pio_span["start"] = c.sim.now
        # Phase (2): iterations of 8-variable writes.
        for t in range(config.iterations):
            for v in range(NUM_VARS):
                yield from io.write(fh, config.offset(t, v, rank),
                                    nbytes=config.write_size)
        pio_span["end"] = max(pio_span["end"], c.sim.now)
        yield barrier.wait()
        # Phase (3): flush to disk (once per client, via local rank 0).
        if local_rank == 0:
            if f_span["start"] is None:
                f_span["start"] = c.sim.now
            yield from io.fsync(fh)
            f_span["end"] = max(f_span["end"], c.sim.now)

    gens = [rank_proc(ci, lr) for ci in range(n)
            for lr in range(config.ranks_per_client)]
    cluster.run_clients(gens)

    pio = (pio_span["end"] - pio_span["start"]) \
        if pio_span["start"] is not None else 0.0
    ftime = (f_span["end"] - f_span["start"]) \
        if f_span["start"] is not None else 0.0
    return VpicResult(config=config, pio_time=pio, f_time=ftime,
                      bytes_written=config.total_bytes,
                      lock_stats=cluster.total_lock_server_stats())
