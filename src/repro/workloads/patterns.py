"""Access-pattern generators (Fig. 2) and micro-benchmark choreography.

All generators produce plain ``(offset, size)`` sequences; the drivers
turn them into simulated IO.  Keeping them as pure functions makes the
pattern shapes unit-testable without a cluster.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

__all__ = ["n_n_offsets", "n1_segmented_offsets", "n1_strided_offsets",
           "interleaved_rw_ops"]


def n_n_offsets(writes: int, size: int) -> List[Tuple[int, int]]:
    """File-per-process: each rank owns its file, sequential offsets."""
    if writes < 0 or size <= 0:
        raise ValueError("writes >= 0 and size > 0 required")
    return [(i * size, size) for i in range(writes)]


def n1_segmented_offsets(rank: int, nranks: int, writes: int,
                         size: int) -> List[Tuple[int, int]]:
    """Shared file, contiguous per-rank segment (Fig. 2b)."""
    _check(rank, nranks, writes, size)
    base = rank * writes * size
    return [(base + i * size, size) for i in range(writes)]


def n1_strided_offsets(rank: int, nranks: int, writes: int,
                       size: int) -> List[Tuple[int, int]]:
    """Shared file, round-robin interleaving (Fig. 2c) — the
    high-contention pattern that defeats lock-range expansion."""
    _check(rank, nranks, writes, size)
    return [((i * nranks + rank) * size, size) for i in range(writes)]


def interleaved_rw_ops(ops: int, size: int) -> List[Tuple[str, int, int]]:
    """The Fig. 19a sequence: alternating write/read at the same offsets
    from one client (lock-upgrading workload)."""
    if ops < 0 or size <= 0:
        raise ValueError("ops >= 0 and size > 0 required")
    out = []
    for i in range(ops):
        kind = "w" if i % 2 == 0 else "r"
        out.append((kind, (i // 2) * size, size))
    return out


def _check(rank: int, nranks: int, writes: int, size: int) -> None:
    if not (0 <= rank < nranks):
        raise ValueError(f"rank {rank} out of range for {nranks}")
    if writes < 0 or size <= 0:
        raise ValueError("writes >= 0 and size > 0 required")
