"""Workload generators and drivers for the paper's evaluation.

* :mod:`repro.workloads.patterns` — the Fig. 2 access-pattern generators
  (N-N, N-1 segmented, N-1 strided) and the Fig. 16 micro-benchmark
  choreographies.
* :mod:`repro.workloads.ior` — an IOR-like driver (§V-C) with PIO / F
  time accounting.
* :mod:`repro.workloads.tile_io` — mpi-tile-IO (§V-D): overlapping tiles,
  non-contiguous atomic writes.
* :mod:`repro.workloads.vpic` — VPIC-IO via the h5bench phases (§V-E).
* :mod:`repro.workloads.client_kill` — the kill-a-client-mid-write
  liveness scenario (docs/faults.md) with its old-or-new oracle.
* :mod:`repro.workloads.sequencer_kill` — the kill-the-sequencer
  failover scenario (docs/ha.md) with its exact all-pattern oracle and
  MTTR report.
"""

from repro.workloads.patterns import (
    n1_segmented_offsets,
    n1_strided_offsets,
    n_n_offsets,
)
from repro.workloads.client_kill import (
    ClientKillConfig,
    ClientKillResult,
    run_client_kill,
)
from repro.workloads.ior import IorConfig, IorResult, run_ior
from repro.workloads.sequencer_kill import (
    SequencerKillConfig,
    SequencerKillResult,
    run_sequencer_kill,
)
from repro.workloads.tile_io import TileIoConfig, TileIoResult, run_tile_io
from repro.workloads.vpic import VpicConfig, VpicResult, run_vpic

__all__ = [
    "ClientKillConfig",
    "ClientKillResult",
    "IorConfig",
    "IorResult",
    "SequencerKillConfig",
    "SequencerKillResult",
    "TileIoConfig",
    "TileIoResult",
    "VpicConfig",
    "VpicResult",
    "n1_segmented_offsets",
    "n1_strided_offsets",
    "n_n_offsets",
    "run_client_kill",
    "run_ior",
    "run_sequencer_kill",
    "run_tile_io",
    "run_vpic",
]
