"""mpi-tile-IO workload (§V-D).

A global 2-D image of ``rows x cols`` tiles is stored row-major in one
shared file (4-byte pixels).  Each client owns one tile and writes it as
one *atomic non-contiguous* operation: one file extent per tile row.
Adjacent tiles overlap by ``overlap`` pixels horizontally and vertically,
so neighbouring clients' writes genuinely conflict — the scenario where
DLM-datatype's precise extent lists avoid false conflicts but SeqDLM's
covering-range locks win anyway by decoupling flushing from conflict
resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import DictConfigMixin
from repro.pfs import Cluster, ClusterConfig
from repro.sim.sync import Barrier

__all__ = ["TileIoConfig", "TileIoResult", "run_tile_io",
           "tile_extents"]

PIXEL = 4  # bytes per pixel (the paper's 4-byte pixels)


@dataclass
class TileIoConfig(DictConfigMixin):
    tile_rows: int = 2          # tiles vertically   (paper: 8)
    tile_cols: int = 2          # tiles horizontally (paper: 12)
    tile_dim: int = 64          # pixels per tile side (paper: 20,480)
    overlap: int = 4            # pixel overlap between tiles (paper: 100)
    stripes: int = 1
    fsync_at_end: bool = True
    #: Data-safety mode (chaos runs): each client fills its tile with a
    #: rank tag and the run ends with a durable read-back check — every
    #: byte must carry the tag of *some* tile covering it (overlap pixels
    #: may legitimately come from either neighbour).
    verify: bool = False
    #: Attach a :class:`~repro.dlm.trace.LockTracer` to every lock server
    #: and collect the merged event list into the result.
    trace: bool = False
    cluster: Optional[ClusterConfig] = None

    @property
    def clients(self) -> int:
        return self.tile_rows * self.tile_cols

    @property
    def image_width(self) -> int:
        """Global image width in pixels (overlaps shrink the span)."""
        return self.tile_cols * self.tile_dim - \
            (self.tile_cols - 1) * self.overlap

    @property
    def image_height(self) -> int:
        return self.tile_rows * self.tile_dim - \
            (self.tile_rows - 1) * self.overlap

    def cluster_config(self) -> ClusterConfig:
        cfg = self.cluster or ClusterConfig()
        cfg.num_clients = self.clients
        if self.verify:
            cfg.content_mode = "full"
        elif cfg.content_mode is None:
            cfg.content_mode = "off"
        return cfg


def tile_extents(cfg: TileIoConfig, rank: int) -> List[Tuple[int, int]]:
    """File extents (offset, nbytes) of one client's tile: one extent per
    tile row.  Overlapping tiles share boundary pixels."""
    tr, tc = divmod(rank, cfg.tile_cols)
    x0 = tc * (cfg.tile_dim - cfg.overlap)
    y0 = tr * (cfg.tile_dim - cfg.overlap)
    width = cfg.image_width
    out = []
    for row in range(cfg.tile_dim):
        y = y0 + row
        off = (y * width + x0) * PIXEL
        out.append((off, cfg.tile_dim * PIXEL))
    return out


@dataclass
class TileIoResult:
    config: TileIoConfig
    pio_time: float
    f_time: float
    bytes_written: int
    lock_stats: Dict[str, float] = field(default_factory=dict)
    verified: Optional[bool] = None
    fault_timeline: list = field(default_factory=list)
    cluster: Optional[Cluster] = field(default=None, repr=False)
    trace_events: list = field(default_factory=list)
    #: Full metrics snapshot (``MetricsSnapshot.to_dict()``).
    metrics: Dict = field(default_factory=dict)
    #: The full resilience counter set (always present, zero-filled).
    resilience: Dict[str, int] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.pio_time + self.f_time

    @property
    def bandwidth(self) -> float:
        return self.bytes_written / self.pio_time if self.pio_time else 0.0


def _rank_tag(rank: int) -> int:
    """Nonzero one-byte tag per rank (zero means 'never written')."""
    return rank % 255 + 1


def run_tile_io(config: TileIoConfig) -> TileIoResult:
    if config.verify and not config.fsync_at_end:
        raise ValueError("verify needs fsync_at_end: the read-back oracle "
                         "checks durable content")
    cluster = Cluster(config.cluster_config())
    tracers = []
    if config.trace:
        from repro.dlm.trace import LockTracer
        tracers = [LockTracer(ls) for ls in cluster.lock_servers]
    cluster.create_file("/tile", stripe_count=config.stripes)
    n = config.clients
    barrier = Barrier(cluster.sim, n)
    pio_span = {"start": None, "end": 0.0}
    f_span = {"start": None, "end": 0.0}
    total = {"bytes": 0}

    def worker(rank: int):
        c = cluster.clients[rank]
        fh = yield from c.open("/tile")
        yield barrier.wait()
        if pio_span["start"] is None:
            pio_span["start"] = c.sim.now
        if config.verify:
            tag = bytes([_rank_tag(rank)])
            ops = [(off, tag * size)
                   for off, size in tile_extents(config, rank)]
        else:
            ops = [(off, size) for off, size in tile_extents(config, rank)]
        total["bytes"] += sum(size for off, size in tile_extents(config,
                                                                 rank))
        yield from c.write_vector(fh, ops, atomic=True)
        pio_span["end"] = max(pio_span["end"], c.sim.now)
        yield barrier.wait()
        if config.fsync_at_end:
            if f_span["start"] is None:
                f_span["start"] = c.sim.now
            yield from c.fsync(fh)
            f_span["end"] = max(f_span["end"], c.sim.now)

    cluster.run_clients([worker(r) for r in range(n)])

    verified = None
    if config.verify:
        size = config.image_height * config.image_width * PIXEL
        candidates: List[set] = [set() for _ in range(size)]
        for rank in range(n):
            tag = _rank_tag(rank)
            for off, nbytes in tile_extents(config, rank):
                for i in range(off, off + nbytes):
                    candidates[i].add(tag)
        actual = cluster.read_back("/tile")
        if len(actual) != size:
            raise AssertionError(
                f"read-back size mismatch: expected {size} bytes, "
                f"got {len(actual)}")
        for i, byte in enumerate(actual):
            if byte not in candidates[i]:
                raise AssertionError(
                    f"read-back mismatch at offset {i}: byte {byte} is "
                    f"not from any covering tile {sorted(candidates[i])}")
        verified = True

    pio = (pio_span["end"] - pio_span["start"]) \
        if pio_span["start"] is not None else 0.0
    ftime = (f_span["end"] - f_span["start"]) \
        if f_span["start"] is not None else 0.0
    return TileIoResult(config=config, pio_time=pio, f_time=ftime,
                        bytes_written=total["bytes"],
                        lock_stats=cluster.total_lock_server_stats(),
                        verified=verified,
                        fault_timeline=(list(cluster.fault_plan.timeline)
                                        if cluster.fault_plan is not None
                                        else []),
                        cluster=cluster,
                        trace_events=sorted(
                            (e for t in tracers for e in t.events),
                            key=lambda e: e.time),
                        metrics=cluster.metrics_snapshot().to_dict(),
                        resilience=cluster.resilience_counters())
