"""Client-kill chaos scenario: liveness, eviction, fencing, old-or-new.

The scenario the liveness subsystem exists for (docs/faults.md, "client
fault model"): N ranks do strided 64-byte writes to a shared file; one
rank (the *victim*) is killed mid-write by a :class:`ClientOutage` with
``kill=True`` — its application process is interrupted and its node is
blacked out, while its client library (heartbeat loop, retry timers)
lives on as a zombie.  Survivors finish, fsync, then read every victim
slot; those reads block on the orphaned write locks until the lock
server's lease/revoke-timeout eviction reclaims them.  After the
blackout heals, the zombie's first RPC is fenced and the victim rejoins
with a fresh incarnation.

The byte-level oracle is exact because writes are engineered for
atomicity end to end:

* a slot (64 B) never crosses a stripe boundary (stripe size is a
  multiple of the slot size), so it is covered by one lock and one
  flush RPC;
* the client's cache deposit is synchronous — an interrupted write
  either deposited its whole slot or none of it;
* a data server applies one write RPC's blocks before yielding, so a
  slot is durable entirely or not at all.

Therefore every victim slot reads back **all-pattern or all-zeros,
never torn**; every survivor slot reads back all-pattern (they fsync'd).

Deterministic: two runs from the same config produce identical fault
timelines, liveness logs and file images (the replay test relies on
this).  Used by ``tests/property/test_chaos_client_liveness.py`` and by
``repro chaos --kill-client``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import DictConfigMixin
from repro.dlm.config import LivenessConfig
from repro.faults import ClientOutage, FaultConfig
from repro.net.rpc import RetryPolicy
from repro.pfs import Cluster, ClusterConfig
from repro.sim.core import AllOf, Interrupt

__all__ = ["ClientKillConfig", "ClientKillResult", "run_client_kill"]

#: One write unit; divides the stripe size so slots never straddle
#: stripes (the oracle needs single-lock, single-RPC slots).
SLOT = 64


@dataclass
class ClientKillConfig(DictConfigMixin):
    """One kill-a-client-mid-write chaos point."""

    dlm: str = "seqdlm"
    seed: int = 101
    clients: int = 4
    #: Rank to kill (its node index doubles as the outage target); None
    #: runs the same workload with no outage — the healthy baseline the
    #: no-spurious-eviction tests compare against.
    victim: Optional[int] = 0
    #: Simulated time of the kill — tuned to land inside the write phase.
    kill_at: float = 6.0e-3
    #: Blackout length; after it the zombie's RPCs flow again and get
    #: fenced.
    heal_after: float = 6.0e-2
    #: Strided slots written per rank.
    writes_per_client: int = 16
    #: Think time before each write (the compute phase of the two-phase
    #: scientific-IO model).  Cached writes are near-instant, so this is
    #: what stretches the write phase enough for the kill to land inside
    #: it: the phase spans ``writes_per_client * pace`` seconds.
    pace: float = 1.0e-3
    #: Checkpoint fsync after every this many writes (0 = only at the
    #: end).  With a mid-phase kill this splits the victim's slots into
    #: durable ("new") and lost ("old") ones, exercising both legs of
    #: the old-or-new oracle.
    fsync_every: int = 4
    stripe_size: int = 1024
    page_size: int = 16
    liveness: LivenessConfig = field(default_factory=LivenessConfig)
    retry: Optional[RetryPolicy] = None
    #: Extra seeded message faults (drop/dup/delay rates) on top of the
    #: client outage; keep zero for the strict matrix (a lossy network
    #: can legitimately evict a live-but-unlucky survivor).
    faults: Optional[FaultConfig] = None
    #: Post-heal drain so fencing/rejoin completes before the oracle runs.
    drain: float = 5.0e-2
    cluster: Optional[ClusterConfig] = None

    def cluster_config(self) -> ClusterConfig:
        cfg = self.cluster or ClusterConfig()
        cfg.dlm = self.dlm
        cfg.seed = self.seed
        cfg.num_clients = self.clients
        cfg.stripe_size = self.stripe_size
        cfg.page_size = self.page_size
        if cfg.content_mode is None:
            cfg.content_mode = "full"
        cfg.extent_log = True
        cfg.validate_locks = True
        cfg.liveness = self.liveness
        if self.retry is not None:
            cfg.retry = self.retry
        faults = self.faults or FaultConfig()
        if self.victim is None:
            cfg.faults = faults
            return cfg
        outage = ClientOutage(client_index=self.victim, start=self.kill_at,
                              duration=self.heal_after, kill=True)
        cfg.faults = FaultConfig(
            **{**vars(faults),
               "client_outages": faults.client_outages + (outage,)})
        return cfg


@dataclass
class ClientKillResult:
    config: ClientKillConfig
    #: Worker outcome per rank: "finished" or "killed".
    outcomes: List[str]
    #: Victim slot index -> "new" (full pattern), "old" (all zeros) or
    #: "torn" (anything else; an oracle failure).
    victim_slots: Dict[int, str]
    #: True when every survivor byte matched and no victim slot tore.
    verified: bool
    #: sim.now of the first eviction, or None if none happened.
    evicted_at: Optional[float]
    #: Longest survivor read-phase wall time (the waiter-unblock bound).
    max_read_wait: float
    counters: Dict[str, int] = field(default_factory=dict)
    fault_timeline: list = field(default_factory=list)
    liveness_events: list = field(default_factory=list)
    file_image: bytes = b""
    cluster: Optional[Cluster] = field(default=None, repr=False)
    #: Full metrics snapshot (``MetricsSnapshot.to_dict()``).
    metrics: Dict = field(default_factory=dict)


def _slot_offsets(rank: int, n: int, count: int) -> List[Tuple[int, int]]:
    """Strided layout: round r puts rank k at slot ``r*n + k``."""
    return [((r * n + rank) * SLOT, SLOT) for r in range(count)]


def _slot_bytes(rank: int, seq: int) -> bytes:
    tag = bytes([(rank + 1) % 256, (seq + 1) % 256])
    return tag * (SLOT // 2)


def run_client_kill(config: ClientKillConfig) -> ClientKillResult:
    """Build a cluster, run the kill scenario, and apply the oracle."""
    cluster = Cluster(config.cluster_config())
    sim = cluster.sim
    n = config.clients
    cluster.create_file("/shared", stripe_count=1)
    read_wait = {"max": 0.0}

    # No Barrier choreography: a barrier cycle never completes once a
    # rank dies, so each worker paces itself and the read phase waits on
    # lock conflicts alone (which is exactly what is under test).
    def worker(rank: int):
        c = cluster.clients[rank]
        try:
            fh = yield from c.open("/shared")
            if rank == config.victim:
                # Half-pace stagger: the victim writes just *before* each
                # survivor round, so when the blackout lands mid-pace the
                # victim still holds its latest grant — the orphan the
                # eviction path must reclaim.  (On the shared grid the
                # same-tick survivor writes would revoke it while the
                # victim is still alive, and it would die holding
                # nothing.)
                yield config.pace / 2
            for seq, (off, size) in enumerate(
                    _slot_offsets(rank, n, config.writes_per_client)):
                yield float(config.pace)
                yield from c.write(fh, off, data=_slot_bytes(rank, seq))
                if config.fsync_every and (seq + 1) % config.fsync_every == 0:
                    yield from c.fsync(fh)
            yield from c.fsync(fh)
            if config.victim is not None and rank != config.victim:
                # Read back every victim slot: these park behind the
                # orphaned write locks until the eviction promotes them.
                t0 = sim.now
                for off, size in _slot_offsets(config.victim, n,
                                               config.writes_per_client):
                    yield from c.read(fh, off, size)
                read_wait["max"] = max(read_wait["max"], sim.now - t0)
            return "finished"
        except Interrupt:
            return "killed"

    procs = []
    for rank in range(n):
        proc = sim.spawn(worker(rank), name=f"ck-rank{rank}")
        cluster.register_app_process(rank, proc)
        procs.append(proc)
    cluster.run_until(AllOf(sim, procs))
    outcomes = [p.value for p in procs]

    # Drain past the heal so the zombie's heartbeat gets fenced and the
    # victim rejoins with a fresh incarnation.
    end = sim.now if config.victim is None else \
        max(sim.now, config.kill_at + config.heal_after)
    cluster.run(until=end + config.drain)

    image = cluster.read_back("/shared")

    def slot_at(off: int) -> bytes:
        return image[off:off + SLOT].ljust(SLOT, b"\x00")

    verified = True
    victim_slots: Dict[int, str] = {}
    for rank in range(n):
        for seq, (off, _size) in enumerate(
                _slot_offsets(rank, n, config.writes_per_client)):
            got = slot_at(off)
            want = _slot_bytes(rank, seq)
            if rank == config.victim:
                if got == want:
                    victim_slots[seq] = "new"
                elif got == bytes(SLOT):
                    victim_slots[seq] = "old"
                else:
                    victim_slots[seq] = "torn"
                    verified = False
            elif got != want:
                verified = False

    events = cluster.liveness_events()
    evicted_at = next((ev.time for ev in events if ev.kind == "evict"),
                      None)
    return ClientKillResult(
        config=config,
        outcomes=outcomes,
        victim_slots=victim_slots,
        verified=verified,
        evicted_at=evicted_at,
        max_read_wait=read_wait["max"],
        counters=cluster.resilience_counters(),
        fault_timeline=(list(cluster.fault_plan.timeline)
                        if cluster.fault_plan is not None else []),
        liveness_events=events,
        file_image=image,
        cluster=cluster,
        metrics=cluster.metrics_snapshot().to_dict())
