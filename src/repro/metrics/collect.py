"""Fold a cluster's component statistics into one MetricsSnapshot.

This module is the *one* aggregation path from the simulator's
components to reported numbers.  Components keep their cheap local
counters (``LockServerStats``, ``DataServerStats``, node traffic
counters...); live simulated-time distributions (RPC queue wait, extent
pin time) stream into the cluster's :class:`~repro.metrics.core.
MetricsRegistry`; and at snapshot time everything is folded here into a
single catalogued namespace (see ``docs/metrics.md``):

    sim.*          event-loop health
    rpc.<svc>.*    per-service dispatch (requests, queues, saturation)
    fabric.*       transport (bytes, deliveries, in-flight)
    faults.*       injected-fault census
    dlm.*          lock servers        dlm.client.*   lock clients
    pfs.client.*   file-system clients cache.*        page/extent caches
    ds.*           data servers + devices
    resilience.*   the chaos-report counter set

``resilience_counters`` is also defined here so the legacy
``Cluster.resilience_counters()`` dict and the ``resilience.*`` metrics
can never disagree — there is one way to count things.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.metrics.core import MetricsSnapshot

__all__ = ["collect_cluster_metrics", "resilience_counters",
           "RESILIENCE_KEYS"]

#: The full resilience key set, emitted (zero-filled) on every run so
#: report diffs never churn when faults are toggled on or off.
RESILIENCE_KEYS = (
    "dedup_expired", "duplicates_suppressed", "evictions",
    "fenced_flushes", "fenced_rejections", "fenced_replies",
    "fenced_writes", "flush_failures", "flush_retries",
    "heartbeat_losses", "heartbeats_accepted", "heartbeats_sent",
    "lock_request_retries", "locks_reclaimed", "notify_failures",
    "rejoins", "revoke_retransmits",
)


def resilience_counters(cluster) -> Dict[str, int]:
    """Aggregate the fault-resilience counters across the cluster.

    Always returns every key of :data:`RESILIENCE_KEYS` — a healthy
    run reports explicit zeros rather than omitting rows.
    """
    out: Dict[str, int] = {k: 0 for k in RESILIENCE_KEYS}

    def add(key: str, value) -> None:
        out[key] += int(value)

    for ls in _lock_servers(cluster):
        add("revoke_retransmits", ls.stats.revoke_retransmits)
        add("heartbeats_accepted", ls.stats.heartbeats)
        add("evictions", ls.stats.evictions)
        add("locks_reclaimed", ls.stats.locks_reclaimed)
        add("fenced_rejections", ls.stats.fenced_rejections)
        add("duplicates_suppressed", ls.service.duplicates_suppressed)
        add("dedup_expired", ls.service.dedup_expired)
    for lc in cluster.lock_clients:
        add("lock_request_retries", lc.stats.request_retries)
        add("notify_failures", lc.stats.notify_failures)
        add("heartbeats_sent", lc.stats.heartbeats_sent)
        add("heartbeat_losses", lc.stats.heartbeat_losses)
        add("fenced_replies", lc.stats.fenced_replies)
        add("rejoins", lc.stats.rejoins)
    for client in cluster.clients:
        add("flush_retries", client.stats.flush_retries)
        add("flush_failures", client.stats.flush_failures)
        add("fenced_flushes", client.stats.fenced_flushes)
    for ds in cluster.data_servers:
        add("fenced_writes", ds.stats.fenced_writes)
        add("duplicates_suppressed", ds.service.duplicates_suppressed)
        add("dedup_expired", ds.service.dedup_expired)
    return out


def _lock_servers(cluster) -> List:
    """Active plus retired lock servers (a deposed sequencer's counters
    still count; pre-HA clusters have no ``all_lock_servers``)."""
    return list(getattr(cluster, "all_lock_servers", cluster.lock_servers))


def _counter(value, unit: str, owner: str) -> Dict[str, Any]:
    return {"type": "counter", "unit": unit, "owner": owner,
            "value": int(value)}


def _gauge(value, unit: str, owner: str, maximum=None) -> Dict[str, Any]:
    return {"type": "gauge", "unit": unit, "owner": owner, "value": value,
            "max": value if maximum is None else maximum}


def _services_by_name(cluster) -> Dict[str, List]:
    groups: Dict[str, List] = {}
    services = [cluster.metadata.service]
    services += [ls.service for ls in _lock_servers(cluster)]
    services += [ds.service for ds in cluster.data_servers]
    services += [c.service
                 for c in getattr(cluster, "mutex_coordinators", [])]
    for svc in services:
        groups.setdefault(svc.name, []).append(svc)
    return groups


def collect_cluster_metrics(cluster) -> MetricsSnapshot:
    """Build the full catalogued snapshot for ``cluster`` right now."""
    sim = cluster.sim
    elapsed = sim.now
    registry = getattr(sim, "metrics", None)
    snap = (registry.snapshot(sim_time=elapsed) if registry is not None
            else MetricsSnapshot(sim_time=elapsed, metrics={}))
    m = snap.metrics

    # -- sim kernel --------------------------------------------------------
    m["sim.events"] = _counter(sim.events_processed, "events", "sim")
    m["sim.queue_max"] = _gauge(sim.queue_length, "events", "sim",
                                maximum=sim.max_queue_length)

    # -- rpc services (grouped by service name across nodes) ---------------
    for name, group in sorted(_services_by_name(cluster).items()):
        p = f"rpc.{name}"
        owner = "net.rpc"
        m[f"{p}.enqueued"] = _counter(
            sum(s.messages_enqueued for s in group), "messages", owner)
        m[f"{p}.dequeued"] = _counter(
            sum(s.messages_dequeued for s in group), "messages", owner)
        m[f"{p}.requests"] = _counter(
            sum(s.requests_handled for s in group), "requests", owner)
        m[f"{p}.duplicates_suppressed"] = _counter(
            sum(s.duplicates_suppressed for s in group), "requests", owner)
        m[f"{p}.dedup_expired"] = _counter(
            sum(s.dedup_expired for s in group), "entries", owner)
        m[f"{p}.queue_depth"] = _gauge(
            sum(s.queue_depth for s in group), "messages", owner,
            maximum=max((s.queue_depth_max for s in group), default=0))
        busy = sum(s.busy_time for s in group)
        m[f"{p}.busy_time"] = _gauge(busy, "seconds", owner)
        m[f"{p}.saturation"] = _gauge(
            busy / (len(group) * elapsed) if elapsed else 0.0,
            "ratio", owner)
        # Admission counters only exist for admission-controlled
        # services: emitting zeros unconditionally would churn the
        # golden byte-identity digests of classic (unbounded) runs.
        if any(s.admission is not None for s in group):
            m[f"{p}.admission_rejected"] = _counter(
                sum(s.admission_rejected for s in group), "requests",
                owner)
            m[f"{p}.admission_shed"] = _counter(
                sum(s.admission_shed for s in group), "requests", owner)

    # -- fabric / faults ---------------------------------------------------
    nodes = list(cluster.fabric.nodes.values())
    fab = cluster.fabric
    m["fabric.bytes_sent"] = _counter(
        sum(n.bytes_sent for n in nodes), "bytes", "net.fabric")
    m["fabric.bytes_received"] = _counter(
        sum(n.bytes_received for n in nodes), "bytes", "net.fabric")
    m["fabric.messages_sent"] = _counter(
        sum(n.messages_sent for n in nodes), "messages", "net.fabric")
    m["fabric.messages_received"] = _counter(
        sum(n.messages_received for n in nodes), "messages", "net.fabric")
    m["fabric.messages_blackholed"] = _counter(
        sum(n.messages_blackholed for n in nodes), "messages",
        "net.fabric")
    m["fabric.deliveries_scheduled"] = _counter(
        fab.deliveries_scheduled, "messages", "net.fabric")
    m["fabric.messages_delivered"] = _counter(
        fab.messages_delivered, "messages", "net.fabric")
    m["fabric.bytes_delivered"] = _counter(
        fab.bytes_delivered, "bytes", "net.fabric")
    m["fabric.in_flight"] = _gauge(
        fab.deliveries_scheduled - fab.messages_delivered, "messages",
        "net.fabric")

    plan = cluster.fault_plan
    counts = dict(plan.counts) if plan is not None else {}
    for key, metric in (("drop", "faults.drops"),
                        ("src-down-drop", "faults.src_down_drops"),
                        ("partition-drop", "faults.partition_drops"),
                        ("delay", "faults.delays"),
                        ("reorder", "faults.reorders"),
                        ("duplicate", "faults.duplicates"),
                        ("crash", "faults.server_crashes"),
                        ("evict", "faults.evictions_recorded")):
        m[metric] = _counter(counts.get(key, 0), "events", "faults")
    injector = cluster.fault_injector
    m["faults.messages_seen"] = _counter(
        injector.messages_seen if injector is not None else 0,
        "messages", "faults")

    # -- lock servers ------------------------------------------------------
    agg = cluster.total_lock_server_stats()
    owner = "dlm.server"
    for key in ("requests", "grants", "early_grants", "early_revocations",
                "revocations_sent", "upgrades", "downgrades", "releases",
                "expansions", "msn_queries", "revoke_retransmits",
                "heartbeats", "evictions", "locks_reclaimed",
                "fenced_rejections"):
        m[f"dlm.{key}"] = _counter(agg.get(key, 0), "events", owner)
    m["dlm.revoke_wait_time"] = _gauge(
        agg.get("revoke_wait_time", 0.0), "seconds", owner)
    m["dlm.lock_table_size"] = _gauge(
        sum(ls.lock_table_size for ls in _lock_servers(cluster)), "locks",
        owner, maximum=max((ls.lock_table_max
                            for ls in _lock_servers(cluster)), default=0))
    m["dlm.waiter_queue_max"] = _gauge(
        max((ls.waiter_queue_max for ls in _lock_servers(cluster)),
            default=0), "requests", owner)

    # -- lock clients ------------------------------------------------------
    owner = "dlm.client"
    for key in ("requests", "cache_hits", "grants", "revokes_received",
                "cancels", "downgrades", "request_retries",
                "notify_failures", "heartbeats_sent", "heartbeat_losses",
                "fenced_replies", "rejoins"):
        m[f"dlm.client.{key}"] = _counter(
            sum(getattr(lc.stats, key) for lc in cluster.lock_clients),
            "events", owner)
    for key in ("lock_wait_time", "cancel_time", "flush_time"):
        m[f"dlm.client.{key}"] = _gauge(
            sum(getattr(lc.stats, key) for lc in cluster.lock_clients),
            "seconds", owner)

    # -- pfs clients + page caches ----------------------------------------
    owner = "pfs.client"
    for key, unit in (("writes", "calls"), ("reads", "calls"),
                      ("bytes_written", "bytes"), ("bytes_read", "bytes"),
                      ("read_rpcs", "rpcs"), ("flush_rpcs", "rpcs"),
                      ("flush_retries", "rpcs"), ("flush_failures", "rpcs"),
                      ("fenced_flushes", "rpcs"),
                      ("cache_read_hits", "reads")):
        m[f"pfs.client.{key}"] = _counter(
            sum(getattr(c.stats, key) for c in cluster.clients), unit,
            owner)
    m["pfs.client.io_time"] = _gauge(
        sum(c.stats.io_time for c in cluster.clients), "seconds", owner)

    caches = [c.cache for c in cluster.clients]
    owner = "pfs.page_cache"
    for key in ("bytes_written", "bytes_flushed", "bytes_evicted"):
        m[f"cache.client.{key}"] = _counter(
            sum(getattr(c, key) for c in caches), "bytes", owner)
    for key, unit in (("read_hits", "reads"), ("read_misses", "reads"),
                      ("invalidations", "calls")):
        m[f"cache.client.{key}"] = _counter(
            sum(getattr(c, key) for c in caches), unit, owner)
    m["cache.client.dirty_bytes"] = _gauge(
        sum(c.dirty_bytes for c in caches), "bytes", owner)

    # -- extent caches -----------------------------------------------------
    ecaches = [ds.extent_cache for ds in cluster.data_servers]
    owner = "pfs.extent_cache"
    m["cache.extent.entries"] = _gauge(
        sum(e.total_entries for e in ecaches), "entries", owner)
    for key, unit in (("entries_cleaned", "entries"),
                      ("clean_passes", "passes"),
                      ("forced_syncs", "syncs")):
        m[f"cache.extent.{key}"] = _counter(
            sum(getattr(e, key) for e in ecaches), unit, owner)

    # -- data servers + devices -------------------------------------------
    owner = "pfs.data_server"
    for key, unit in (("write_rpcs", "rpcs"), ("read_rpcs", "rpcs"),
                      ("blocks_received", "blocks"),
                      ("bytes_discarded", "bytes"),
                      ("fenced_writes", "rpcs")):
        m[f"ds.{key}"] = _counter(
            sum(getattr(ds.stats, key) for ds in cluster.data_servers),
            unit, owner)
    m["ds.flush_bytes"] = _counter(
        sum(ds.stats.bytes_received for ds in cluster.data_servers),
        "bytes", owner)
    devices = [ds.device for ds in cluster.data_servers]
    owner = "storage.device"
    for key, unit in (("reads", "ios"), ("writes", "ios"),
                      ("bytes_read", "bytes"), ("bytes_written", "bytes")):
        m[f"ds.disk.{key}"] = _counter(
            sum(getattr(d.stats, key) for d in devices), unit, owner)
    disk_busy = sum(d.stats.busy_time for d in devices)
    m["ds.disk.busy_time"] = _gauge(disk_busy, "seconds", owner)
    m["ds.disk.saturation"] = _gauge(
        disk_busy / (len(devices) * elapsed) if elapsed else 0.0,
        "ratio", owner)

    # -- sequencer failover (HA clusters only; see docs/ha.md) -------------
    # Emitted only when standbys exist: adding zero-filled failover keys
    # to classic runs would churn the golden byte-identity digests, the
    # same rule the admission counters follow.
    standbys = getattr(cluster, "standbys", None)
    if standbys:
        owner = "dlm.replication"
        report = cluster.failover_report()
        m["failover.promotions"] = _counter(len(report), "events", owner)
        m["failover.replication_records"] = _counter(
            sum(sb.records for sb in standbys), "messages", owner)
        m["failover.request_clones"] = _counter(
            sum(sb.clones for sb in standbys), "messages", owner)
        m["failover.locks_reasserted"] = _counter(
            sum(ls.locks_reasserted for ls in _lock_servers(cluster)),
            "locks", owner)
        local_lcs = [ds.local_lock_client for ds in cluster.data_servers
                     if ds.local_lock_client is not None]
        m["failover.stale_grants_fenced"] = _counter(
            sum(lc.stale_grants_fenced
                for lc in list(cluster.lock_clients) + local_lcs),
            "grants", owner)
        for key in ("detection_time", "promotion_time",
                    "time_to_first_grant", "mttr"):
            vals = [r[key] for r in report if r[key] is not None]
            m[f"failover.{key}"] = _gauge(
                max(vals) if vals else 0.0, "seconds", owner)

    # -- lock-namespace sharding (sharded clusters only) -------------------
    # Same gating rule as the failover block: emitting zero-filled shard
    # keys on classic runs would churn the golden byte-identity digests.
    smap = getattr(cluster, "shard_map", None)
    if smap is not None:
        owner = "dlm.sharding"
        m["shard.num_shards"] = _gauge(smap.num_shards, "shards", owner)
        m["shard.epoch"] = _gauge(smap.epoch, "epochs", owner)
        m["shard.migrations"] = _counter(
            len(cluster.shard_migration_records), "events", owner)
        m["shard.locks_migrated"] = _counter(
            sum(ls.stats.shard_locks_migrated_in
                for ls in _lock_servers(cluster)), "locks", owner)
        m["shard.rejections"] = _counter(
            sum(ls.stats.shard_rejections for ls in _lock_servers(cluster)),
            "requests", owner)
        m["shard.regrants"] = _counter(
            sum(ls.stats.shard_regrants for ls in _lock_servers(cluster)),
            "requests", owner)
        local_lcs = [ds.local_lock_client for ds in cluster.data_servers
                     if ds.local_lock_client is not None]
        m["shard.wrong_shard_replies"] = _counter(
            sum(lc.stats.wrong_shard_replies
                for lc in list(cluster.lock_clients) + local_lcs),
            "replies", owner)
        caches = [lc.shard_cache for lc in cluster.lock_clients
                  if lc.shard_cache is not None]
        lookups = sum(c.lookups for c in caches)
        refreshes = sum(c.refreshes for c in caches)
        m["shard.cache_lookups"] = _counter(lookups, "lookups", owner)
        m["shard.cache_refreshes"] = _counter(refreshes, "lookups", owner)
        m["shard.cache_announce_updates"] = _counter(
            sum(c.announce_updates for c in caches), "updates", owner)
        m["shard.cache_hit_rate"] = _gauge(
            max(0.0, 1.0 - refreshes / lookups) if lookups else 1.0,
            "ratio", owner)
        directory = getattr(cluster, "shard_directory", None)
        m["shard.dir_lookups"] = _counter(
            directory.lookups if directory is not None else 0,
            "lookups", owner)
        m["shard.sn_floor_entries"] = _gauge(
            sum(len(ls.sn_floors) for ls in cluster.lock_servers
                if ls.sn_floors is not None), "resources", owner)
        m["shard.sn_floor_bytes"] = _gauge(
            sum(ls.sn_floors.nbytes for ls in cluster.lock_servers
                if ls.sn_floors is not None), "bytes", owner)
        sizes = cluster.shard_table_sizes()
        if smap.num_shards <= 64:
            for s, count in sorted(sizes.items()):
                m[f"shard.table_locks.{s:02d}"] = _gauge(
                    count, "resources", owner)
        else:
            m["shard.table_locks_max"] = _gauge(
                max(sizes.values(), default=0), "resources", owner)

    # -- decentralized mutual exclusion (registry coordinators only) -------
    # Gated like the failover and shard blocks: classic runs have no
    # coordinators, so their golden digests never see these keys.  The
    # ``mutex.messages_per_cs`` / ``mutex.sync_delay`` histograms stream
    # into the registry directly and arrive via ``registry.snapshot``.
    coords = getattr(cluster, "mutex_coordinators", None)
    if coords:
        owner = "dlm.mutex"
        m["mutex.coordinators"] = _gauge(len(coords), "nodes", owner)
        m["mutex.protocol_messages"] = _counter(
            sum(c.protocol_messages for c in coords), "messages", owner)
        # Algorithm-specific counters, zero for the other algorithms.
        for key, unit in (("ballot_rounds", "ballots"),
                          ("ballots_lost", "ballots"),
                          ("duplicate_tokens", "tokens")):
            m[f"mutex.{key}"] = _counter(
                sum(getattr(c, key, 0) for c in coords), unit, owner)

    # -- the chaos-report resilience set (always full, zero-filled) --------
    for key, value in resilience_counters(cluster).items():
        m[f"resilience.{key}"] = _counter(value, "events", "resilience")

    snap.metrics = dict(sorted(m.items()))
    return snap
