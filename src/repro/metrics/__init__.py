"""Deterministic simulated-time metrics for the SeqDLM reproduction.

``repro.metrics.core`` holds the primitives (Counter / Gauge /
Histogram / MetricsRegistry / MetricsSnapshot); ``repro.metrics.
collect`` folds a whole cluster into one catalogued snapshot.  See
``docs/metrics.md`` for the metric catalogue.
"""

from repro.metrics.core import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.metrics.collect import (
    RESILIENCE_KEYS,
    collect_cluster_metrics,
    resilience_counters,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "RESILIENCE_KEYS",
    "collect_cluster_metrics",
    "resilience_counters",
]
