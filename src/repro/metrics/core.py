"""Deterministic simulated-time metrics: counters, gauges, histograms.

The registry is the measurement instrument the paper had (§II-C, Table I
analysis): per-service OPS saturation, RTT counts, queue depths and wait
times — the quantities Equation (1)'s three terms are made of.  Every
primitive here is built for *exact* determinism:

* counters and gauges hold plain ints/floats driven only by the
  simulation (never wall clock);
* histograms use fixed HDR-style bins — each observation lands in a
  bucket computed with ``math.frexp`` (pure integer arithmetic on the
  float's exponent/mantissa), so percentiles are a deterministic
  function of the observation multiset, independent of platform libm;
* snapshots serialize with sorted keys, so two runs of the same
  (workload, config, seed) produce byte-identical JSON.

That byte-for-bit property is what the golden tests in
``tests/integration/test_determinism.py`` pin down.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "MetricsSnapshot"]


class Counter:
    """A monotonically non-decreasing event count."""

    __slots__ = ("name", "unit", "owner", "value")

    kind = "counter"

    def __init__(self, name: str, unit: str = "events", owner: str = ""):
        self.name = name
        self.unit = unit
        self.owner = owner
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_entry(self) -> Dict[str, Any]:
        return {"type": self.kind, "unit": self.unit, "owner": self.owner,
                "value": self.value}


class Gauge:
    """A point-in-time level plus its high-watermark."""

    __slots__ = ("name", "unit", "owner", "value", "max_value")

    kind = "gauge"

    def __init__(self, name: str, unit: str = "", owner: str = ""):
        self.name = name
        self.unit = unit
        self.owner = owner
        self.value: float = 0
        self.max_value: float = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def to_entry(self) -> Dict[str, Any]:
        return {"type": self.kind, "unit": self.unit, "owner": self.owner,
                "value": self.value, "max": self.max_value}


#: Linear sub-buckets per power-of-two octave.  8 gives <= 6.25% relative
#: bucket width — comfortably finer than any tolerance the analysis
#: tests use, while keeping bucket maps tiny.
SUBBUCKETS = 8


def bucket_index(value: float) -> int:
    """HDR-style fixed bucket for ``value``.

    ``frexp`` decomposes ``value = m * 2**e`` with ``m`` in [0.5, 1);
    the bucket is the octave ``e`` refined into :data:`SUBBUCKETS`
    linear slices of the mantissa.  All arithmetic is exact, so the
    same value always lands in the same bucket on every platform.
    Non-positive values share the dedicated underflow bucket.
    """
    if value <= 0.0:
        return -(10 ** 6)  # underflow bucket, below every real bucket
    m, e = math.frexp(value)
    return e * SUBBUCKETS + int((m - 0.5) * 2 * SUBBUCKETS)


def bucket_upper_bound(index: int) -> float:
    """Largest value mapping to bucket ``index`` (its right edge)."""
    if index <= -(10 ** 6):
        return 0.0
    e, sub = divmod(index, SUBBUCKETS)
    return math.ldexp(0.5 + (sub + 1) / (2 * SUBBUCKETS), e)


class Histogram:
    """Fixed-bucket simulated-time histogram with exact det. percentiles.

    Alongside the bucket counts it tracks exact count/sum/min/max, so
    cheap aggregate checks (mean wait time, total pin time) need no
    bucket math at all.
    """

    __slots__ = ("name", "unit", "owner", "count", "sum", "min", "max",
                 "_buckets")

    kind = "histogram"

    def __init__(self, name: str, unit: str = "seconds", owner: str = ""):
        self.name = name
        self.unit = unit
        self.owner = owner
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        idx = bucket_index(value)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    def percentile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1]: the upper bound of the
        bucket holding the ``ceil(q * count)``-th observation."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= rank:
                return bucket_upper_bound(idx)
        return bucket_upper_bound(max(self._buckets))  # pragma: no cover

    def to_entry(self) -> Dict[str, Any]:
        return {"type": self.kind, "unit": self.unit, "owner": self.owner,
                "count": self.count, "sum": self.sum,
                "min": 0.0 if self.min is None else self.min,
                "max": 0.0 if self.max is None else self.max,
                "p50": self.percentile(0.50),
                "p95": self.percentile(0.95),
                "p99": self.percentile(0.99)}


class MetricsRegistry:
    """Name-keyed store of metrics; get-or-create on access.

    One registry serves a whole cluster (anchored at
    ``Simulator.metrics`` by :class:`~repro.pfs.filesystem.Cluster`);
    same-named metrics from different nodes share one instance, which
    is how all "dlm" services aggregate into one wait-time histogram.
    """

    def __init__(self):
        self._metrics: Dict[str, Any] = {}

    def _get(self, cls, name: str, unit: str, owner: str):
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = cls(name, unit, owner)
        elif not isinstance(m, cls):
            raise TypeError(f"metric {name!r} is a {m.kind}, "
                            f"not a {cls.kind}")
        return m

    def counter(self, name: str, unit: str = "events",
                owner: str = "") -> Counter:
        return self._get(Counter, name, unit, owner)

    def gauge(self, name: str, unit: str = "", owner: str = "") -> Gauge:
        return self._get(Gauge, name, unit, owner)

    def histogram(self, name: str, unit: str = "seconds",
                  owner: str = "") -> Histogram:
        return self._get(Histogram, name, unit, owner)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str):
        return self._metrics[name]

    def snapshot(self, sim_time: float = 0.0) -> "MetricsSnapshot":
        entries = {name: m.to_entry()
                   for name, m in sorted(self._metrics.items())}
        return MetricsSnapshot(sim_time=sim_time, metrics=entries)


class MetricsSnapshot:
    """A frozen, JSON-stable view of a registry at one simulated instant.

    Carries only simulation-derived values — no wall clock, no
    process-dependent ids — so ``to_json()`` of two identical runs is
    byte-identical (the golden-test contract).
    """

    def __init__(self, sim_time: float, metrics: Dict[str, Dict[str, Any]]):
        self.sim_time = sim_time
        self.metrics = metrics

    def to_dict(self) -> Dict[str, Any]:
        return {"sim_time": self.sim_time,
                "metrics": {k: dict(v)
                            for k, v in sorted(self.metrics.items())}}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent,
                          separators=(",", ":") if indent is None
                          else (",", ": "))

    # ------------------------------------------------------------- queries
    def value(self, name: str, field: str = "value"):
        """Scalar field of one metric (KeyError on unknown name)."""
        return self.metrics[name][field]

    def get(self, name: str, field: str = "value", default=0):
        entry = self.metrics.get(name)
        return default if entry is None else entry.get(field, default)

    def with_prefix(self, prefix: str) -> Dict[str, Dict[str, Any]]:
        return {k: v for k, v in self.metrics.items()
                if k.startswith(prefix)}

    def by_owner(self, owner: str) -> Dict[str, Dict[str, Any]]:
        return {k: v for k, v in self.metrics.items()
                if v.get("owner") == owner}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsSnapshot":
        """Rehydrate a snapshot from ``to_dict()`` output (e.g. a
        harness report's ``metrics`` field)."""
        return cls(sim_time=data["sim_time"], metrics=data["metrics"])

    def profile(self, elapsed: Optional[float] = None
                ) -> List[Tuple[str, float, float]]:
        """Services ranked by simulated busy time: a list of
        ``(name, busy_seconds, fraction_of_elapsed)``, busiest first.
        Feeds the ``repro profile`` view."""
        elapsed = self.sim_time if elapsed is None else elapsed
        rows = []
        for name, entry in self.metrics.items():
            if not name.endswith(".busy_time"):
                continue
            busy = entry.get("value", 0.0)
            frac = busy / elapsed if elapsed else 0.0
            rows.append((name[:-len(".busy_time")], busy, frac))
        rows.sort(key=lambda r: (-r[1], r[0]))
        return rows
