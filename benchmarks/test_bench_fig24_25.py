"""Bench: Fig. 24+25 — VPIC-IO (h5bench particle writes).

Shape (paper): ccPFS-SeqDLM beats ccPFS-DLM-Lustre at every stripe
count and write size (6.2x/1.5x at 1/16 stripes for the small writes,
34.8x/8.8x for the large); bandwidth grows with stripe count for the
traditional DLM (less per-resource contention); SeqDLM's advantage
comes from a much shorter PIO phase; the extent cache + cleaning add no
material overhead (PIO+F totals comparable).
"""

from benchmarks.conftest import bw


def test_bench_fig24_25(run_exp):
    res = run_exp("fig24_25")
    for wsize in ("64K", "256K"):
        for stripes in (1, 4, 16):
            s = res.row_lookup(config="ccPFS-S", stripes=stripes,
                               **{"write size": wsize})
            l = res.row_lookup(config="ccPFS-L", stripes=stripes,
                               **{"write size": wsize})
            # Paper factors: 6.2x/34.8x on 1 stripe down to 1.5x/8.8x
            # on 16 stripes — the advantage shrinks with stripe count.
            floor = 1.4 if stripes == 16 else 2.0
            assert bw(s) > floor * bw(l), (wsize, stripes)
            assert s["_pio"] < l["_pio"], (wsize, stripes)
        # Traditional DLM gains from more stripes.
        l1 = bw(res.row_lookup(config="ccPFS-L", stripes=1,
                               **{"write size": wsize}))
        l16 = bw(res.row_lookup(config="ccPFS-L", stripes=16,
                                **{"write size": wsize}))
        assert l16 > l1, wsize
    # The SeqDLM advantage on one stripe does not shrink with write
    # size (the paper sees it grow 6.2x -> 34.8x; at our scaled op
    # counts both systems' single-stripe bottlenecks scale together, so
    # we only pin the direction loosely — see EXPERIMENTS.md).
    gap_small = (bw(res.row_lookup(config="ccPFS-S", stripes=1,
                                   **{"write size": "64K"}))
                 / bw(res.row_lookup(config="ccPFS-L", stripes=1,
                                     **{"write size": "64K"})))
    gap_large = (bw(res.row_lookup(config="ccPFS-S", stripes=1,
                                   **{"write size": "256K"}))
                 / bw(res.row_lookup(config="ccPFS-L", stripes=1,
                                     **{"write size": "256K"})))
    assert gap_large > 0.8 * gap_small, (gap_small, gap_large)
