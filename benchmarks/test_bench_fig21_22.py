"""Bench: Fig. 21+22 — N-1 strided on multi-stripe files, IO500-hard
write sizes (47,008 B and multiples; unaligned, some writes spanning two
stripes).

Shape (paper): the traditional DLMs' bandwidth grows with write size but
stays device-bound; SeqDLM's grows with write size and is NOT
device-bound (3.6–10.3x over DLM-Lustre on 4 stripes, 2.0–6.2x on 8);
SeqDLM's lead comes from a much shorter PIO time; with more stripes the
traditional DLMs close part of the gap (less contention per resource).
"""

from benchmarks.conftest import bw


def test_bench_fig21_22(run_exp):
    res = run_exp("fig21_22")
    for stripes in (4, 8):
        for xfer in (47_008, 188_032, 752_128):
            seq = res.row_lookup(stripes=stripes, DLM="seqdlm", _xfer=xfer)
            lus = res.row_lookup(stripes=stripes, DLM="dlm-lustre",
                                 _xfer=xfer)
            assert bw(seq) > 1.5 * bw(lus), (stripes, xfer)
            # SeqDLM's PIO share of the total is far below the
            # traditional DLM's (flushing decoupled, Fig. 22).
            seq_share = seq["_pio"] / (seq["_pio"] + seq["_f"])
            lus_share = lus["_pio"] / (lus["_pio"] + lus["_f"])
            assert seq_share < 0.8 * lus_share, (stripes, xfer)
        # Traditional bandwidth grows with write size.
        small = bw(res.row_lookup(stripes=stripes, DLM="dlm-lustre",
                                  _xfer=47_008))
        big = bw(res.row_lookup(stripes=stripes, DLM="dlm-lustre",
                                _xfer=752_128))
        assert big > small, stripes
    # The SeqDLM advantage grows with the write size on 4 stripes
    # (paper: 3.6x at 47,008 B -> 10.3x at 16x that size).
    sp_small = (bw(res.row_lookup(stripes=4, DLM="seqdlm", _xfer=47_008))
                / bw(res.row_lookup(stripes=4, DLM="dlm-lustre",
                                    _xfer=47_008)))
    sp_big = (bw(res.row_lookup(stripes=4, DLM="seqdlm", _xfer=752_128))
              / bw(res.row_lookup(stripes=4, DLM="dlm-lustre",
                                  _xfer=752_128)))
    assert sp_big > sp_small, (sp_small, sp_big)
