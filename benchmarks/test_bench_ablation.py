"""Bench: design-choice ablations called out in DESIGN.md.

* extent-cache cleaning / extent log: §IV-B claims "little impact on the
  IO performance of data servers" — bandwidths must agree within a few
  percent across variants;
* lock-range expansion: greedy expansion is what collapses N-1
  segmented's lock traffic to ~one request per client (§II-A).
"""

from benchmarks.conftest import bw


def test_bench_ablation_extent_cache(run_exp):
    res = run_exp("ablation_cache")
    bws = [bw(row) for row in res.rows]
    ref = bws[0]
    for val in bws:
        assert abs(val - ref) < 0.1 * ref, bws
    totals = [row["_total"] for row in res.rows]
    for val in totals:
        assert abs(val - totals[0]) < 0.1 * totals[0], totals


def test_bench_ablation_expansion(run_exp):
    res = run_exp("ablation_expansion")
    greedy = res.row_lookup(expansion="greedy")
    none = res.row_lookup(expansion="none")
    # Greedy expansion: a handful of requests total; none: one per write.
    assert greedy["_requests"] < none["_requests"] / 10
    assert bw(greedy) > 1.5 * bw(none)
