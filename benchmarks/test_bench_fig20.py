"""Bench: Fig. 20 — IOR N-1 strided on a single stripe.

Shape (paper): SeqDLM strided reaches 81.7–96.9 % of segmented and beats
DLM-basic/DLM-Lustre by a large, size-growing factor (up to 18.1x); the
traditional DLMs' bandwidth is pinned near the storage device; SeqDLM's
PIO time is a small fraction of its total (paper ~5 %) while the
traditional DLMs' PIO takes nearly all of it (up to 99 %).
"""

from benchmarks.conftest import bw


def test_bench_fig20(run_exp):
    res = run_exp("fig20")
    for xfer in ("64K", "256K", "1024K"):
        seq = res.row_lookup(config="SeqDLM", xfer=xfer)
        basic = res.row_lookup(config="DLM-basic", xfer=xfer)
        lustre = res.row_lookup(config="DLM-Lustre", xfer=xfer)
        seg = res.row_lookup(config="SeqDLM segmented (ref)", xfer=xfer)
        # SeqDLM wins big over both traditional DLMs.
        assert bw(seq) > 3 * bw(basic), xfer
        assert bw(seq) > 3 * bw(lustre), xfer
        # ...and sits in the same league as uncontended segmented IO.
        # (The paper reports 81.7-96.9% of segmented; our lock path is
        # pinned at the measured 213 kOPS dispatch rate, which caps the
        # 64K point near ~25% — see EXPERIMENTS.md.)
        assert bw(seq) > 0.2 * bw(seg), xfer
        # PIO dominates the traditional DLMs' total time (paper: up to
        # 99%) but is a minor part of SeqDLM's (flush decoupled).
        basic_share = basic["_pio"] / (basic["_pio"] + basic["_f"])
        seq_share = seq["_pio"] / (seq["_pio"] + seq["_f"])
        assert seq_share < 0.5 * basic_share, xfer
        assert seq_share < 0.4, xfer
    assert res.row_lookup(config="DLM-basic", xfer="64K")["_pio"] > \
        0.6 * (res.row_lookup(config="DLM-basic", xfer="64K")["_pio"]
               + res.row_lookup(config="DLM-basic", xfer="64K")["_f"])
    # The speedup grows with the write size.
    sp = {x: bw(res.row_lookup(config="SeqDLM", xfer=x))
          / bw(res.row_lookup(config="DLM-basic", xfer=x))
          for x in ("64K", "1024K")}
    assert sp["1024K"] > sp["64K"], sp


def test_bench_fig20_original_lustre_slower_at_small_sizes(run_exp):
    """DLM-Lustre inside ccPFS beats 'original Lustre' at small write
    sizes thanks to the registered memory pool; the gap narrows with
    size (paper §V-C1)."""
    res = run_exp("fig20")
    gap_small = (bw(res.row_lookup(config="DLM-Lustre", xfer="64K"))
                 / bw(res.row_lookup(config="Lustre (orig)", xfer="64K")))
    gap_big = (bw(res.row_lookup(config="DLM-Lustre", xfer="1024K"))
               / bw(res.row_lookup(config="Lustre (orig)", xfer="1024K")))
    assert gap_small >= 1.0
    assert gap_big <= gap_small + 0.25
