"""Bench: Table III — IOR N-1 segmented on one stripe (low contention).

Shape (paper): all three DLMs land within a few percent of each other in
both bandwidth and total IO time — SeqDLM keeps the traditional DLM's
low-contention advantage, and the sequencer ordering adds no material
flushing overhead.
"""

from benchmarks.conftest import bw


def test_bench_table3(run_exp):
    res = run_exp("table3")
    bws = {row["DLM"]: bw(row) for row in res.rows}
    totals = {row["DLM"]: row["_total"] for row in res.rows}
    ref = bws["dlm-basic"]
    for dlm, val in bws.items():
        assert abs(val - ref) < 0.15 * ref, (dlm, val, ref)
    ref_t = totals["dlm-basic"]
    for dlm, val in totals.items():
        assert abs(val - ref_t) < 0.2 * ref_t, (dlm, val, ref_t)
