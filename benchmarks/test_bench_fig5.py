"""Bench: Fig. 5 — degrading the flush path lifts the traditional DLM.

Shape: fakeWrite (no disk) beats the full flush; fakeWrite plus
first-page-only wire transfers beats fakeWrite alone — confirming data
flushing (term ③) as the §II-C bottleneck.
"""

from benchmarks.conftest import bw


def test_bench_fig5(run_exp):
    res = run_exp("fig5")
    for xfer in ("64K", "1024K"):
        full = bw(res.row_lookup(config="full flush", xfer=xfer))
        nodisk = bw(res.row_lookup(config="fakeWrite (no disk)",
                                   xfer=xfer))
        nowire = bw(res.row_lookup(
            config="fakeWrite + first-page wire", xfer=xfer))
        assert nodisk > full, (xfer, nodisk, full)
        assert nowire >= nodisk, (xfer, nowire, nodisk)
        # Removing the flush entirely should be a substantial lift.
        assert nowire > 1.5 * full, (xfer, nowire, full)
