"""Wall-clock micro-suite: how fast does the simulator itself run?

Unlike the figure benches (which assert *simulated* results), this suite
measures host throughput — kernel events/sec in both scheduling idioms,
one end-to-end small Fig. 4, and the persistent-pool sweep runner across
a jobs curve — and writes the numbers to ``BENCH_wallclock.json`` at the
repo root.  Assertions are deliberately conservative (CI machines vary
wildly); the committed JSON records the dev-box numbers and
``scripts/perf_smoke.py`` gates regressions in CI.
"""

import json
import os
import platform
from pathlib import Path

import pytest

from repro.harness.wallclock import (
    fig4_seconds,
    kernel_events_per_sec,
    partition_timing,
    sweep_timing,
)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_wallclock.json"

RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    yield
    if not RESULTS:
        return
    payload = {"meta": {"python": platform.python_version(),
                        "machine": platform.machine(),
                        "cpus": os.cpu_count() or 1}}
    payload.update(RESULTS)
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_kernel_events_per_sec(benchmark):
    direct = benchmark.pedantic(kernel_events_per_sec, args=("direct",),
                                rounds=1, iterations=1)
    timeout = kernel_events_per_sec("timeout")
    RESULTS["kernel"] = {"cpus": os.cpu_count() or 1,
                         "direct_events_per_sec": round(direct),
                         "timeout_events_per_sec": round(timeout)}
    print(f"\nkernel: direct {direct:,.0f} ev/s, "
          f"timeout {timeout:,.0f} ev/s")
    # The direct-delay fast path must clearly beat the event path, and
    # both must clear a floor low enough for any CI box.
    assert direct > timeout
    assert direct > 300_000
    assert timeout > 150_000


def test_fig4_small_end_to_end(benchmark):
    secs = benchmark.pedantic(fig4_seconds, rounds=1, iterations=1)
    RESULTS["fig4_small_seconds"] = round(secs, 3)
    print(f"\nfig4 small end-to-end: {secs:.2f}s")
    assert secs < 120, "small-scale fig4 should finish in well under 2min"


def test_sweep_jobs_curve(benchmark):
    # Measure the whole jobs curve the CI matrix also walks; the
    # persistent-pool + chunked-dispatch path is exercised at every
    # parallel point regardless of how many CPUs the box has.
    timing = benchmark.pedantic(sweep_timing, kwargs={"jobs": (1, 2, 4)},
                                rounds=1, iterations=1)
    RESULTS["sweep"] = timing
    cpus = timing["cpus"]
    print(f"\nsweep: {timing['cells']} cells, serial "
          f"{timing['serial_seconds']}s, cpus={cpus}")
    for j, entry in sorted(timing["per_jobs"].items(), key=lambda kv: int(kv[0])):
        speedup = entry.get("speedup")
        print(f"  jobs={j}: {entry['seconds']}s "
              f"({f'{speedup}x' if speedup is not None else 'speedup n/a'}, "
              f"chunksize={entry['chunksize']}, chunks={entry['chunks']})")
    # Byte-identity is unconditional — a speedup that changes results
    # is a determinism bug, not a win.
    assert timing["byte_identical"]
    # The serial entry reports its real dispatch shape: one cell per
    # chunk, in order (not the old 0/0 placeholder).
    serial_entry = timing["per_jobs"]["1"]
    assert serial_entry["chunksize"] == 1
    assert serial_entry["chunks"] == timing["cells"]
    if cpus >= 4:
        assert timing["best_speedup"] >= 2.0
    elif cpus >= 2:
        assert timing["best_speedup"] >= 1.3
    else:
        # Single CPU: no parallelism to be had, so speedup is not even
        # *recorded* (an honest bench does not publish ratios it cannot
        # measure) — but the pool path must still be cheap: fork + chunk
        # dispatch + JSON-bytes transfer, no pathological blowup.
        print("  NOTICE: <2 CPUs — speedup assertion skipped and speedup "
              "fields suppressed (parallelism unmeasurable on one core)")
        assert timing["best_speedup"] is None
        assert all("speedup" not in e for e in timing["per_jobs"].values())
        serial_s = timing["per_jobs"]["1"]["seconds"]
        for j, entry in timing["per_jobs"].items():
            if int(j) > 1 and serial_s:
                assert entry["seconds"] <= 3.0 * serial_s, (
                    f"jobs={j} took {entry['seconds']}s vs serial "
                    f"{serial_s}s — pool overhead blew up")


def test_partition_curve(benchmark):
    # The conservative windowed runner across the partition curve: wall
    # seconds plus protocol counters, gated on byte-identity (the whole
    # point of the conservative design).
    timing = benchmark.pedantic(partition_timing,
                                kwargs={"partitions": (1, 2, 4)},
                                rounds=1, iterations=1)
    RESULTS["partition"] = timing
    print(f"\npartition: golden {timing['dlm']} seed={timing['seed']}, "
          f"serial {timing['serial_seconds']}s, cpus={timing['cpus']}")
    for p, entry in sorted(timing["per_partitions"].items(),
                           key=lambda kv: int(kv[0])):
        print(f"  partitions={p}: {entry['seconds']}s "
              f"(windows={entry.get('windows', '-')}, "
              f"exchanged={entry.get('exchanged', '-')})")
    assert timing["byte_identical"]
    # The window protocol must genuinely engage: partitioned points run
    # windows and exchange cross-partition deliveries (a zero here means
    # the partition plan degenerated and the test is vacuous).
    for p, entry in timing["per_partitions"].items():
        if int(p) > 1:
            assert entry["windows"] > 0
            assert entry["exchanged"] > 0
    if timing["cpus"] < 2:
        assert all("speedup" not in e
                   for e in timing["per_partitions"].values())
