"""Wall-clock micro-suite: how fast does the simulator itself run?

Unlike the figure benches (which assert *simulated* results), this suite
measures host throughput — kernel events/sec in both scheduling idioms,
one end-to-end small Fig. 4, and the persistent-pool sweep runner across
a jobs curve — and writes the numbers to ``BENCH_wallclock.json`` at the
repo root.  Assertions are deliberately conservative (CI machines vary
wildly); the committed JSON records the dev-box numbers and
``scripts/perf_smoke.py`` gates regressions in CI.
"""

import json
import os
import platform
from pathlib import Path

import pytest

from repro.harness.wallclock import (
    fig4_seconds,
    kernel_events_per_sec,
    sweep_timing,
)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_wallclock.json"

RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    yield
    if not RESULTS:
        return
    payload = {"meta": {"python": platform.python_version(),
                        "machine": platform.machine(),
                        "cpus": os.cpu_count() or 1}}
    payload.update(RESULTS)
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_kernel_events_per_sec(benchmark):
    direct = benchmark.pedantic(kernel_events_per_sec, args=("direct",),
                                rounds=1, iterations=1)
    timeout = kernel_events_per_sec("timeout")
    RESULTS["kernel"] = {"direct_events_per_sec": round(direct),
                         "timeout_events_per_sec": round(timeout)}
    print(f"\nkernel: direct {direct:,.0f} ev/s, "
          f"timeout {timeout:,.0f} ev/s")
    # The direct-delay fast path must clearly beat the event path, and
    # both must clear a floor low enough for any CI box.
    assert direct > timeout
    assert direct > 300_000
    assert timeout > 150_000


def test_fig4_small_end_to_end(benchmark):
    secs = benchmark.pedantic(fig4_seconds, rounds=1, iterations=1)
    RESULTS["fig4_small_seconds"] = round(secs, 3)
    print(f"\nfig4 small end-to-end: {secs:.2f}s")
    assert secs < 120, "small-scale fig4 should finish in well under 2min"


def test_sweep_jobs_curve(benchmark):
    # Measure the whole jobs curve the CI matrix also walks; the
    # persistent-pool + chunked-dispatch path is exercised at every
    # parallel point regardless of how many CPUs the box has.
    timing = benchmark.pedantic(sweep_timing, kwargs={"jobs": (1, 2, 4)},
                                rounds=1, iterations=1)
    RESULTS["sweep"] = timing
    cpus = timing["cpus"]
    print(f"\nsweep: {timing['cells']} cells, serial "
          f"{timing['serial_seconds']}s, cpus={cpus}")
    for j, entry in sorted(timing["per_jobs"].items(), key=lambda kv: int(kv[0])):
        print(f"  jobs={j}: {entry['seconds']}s ({entry['speedup']}x, "
              f"chunksize={entry['chunksize']}, chunks={entry['chunks']})")
    # Byte-identity is unconditional — a speedup that changes results
    # is a determinism bug, not a win.
    assert timing["byte_identical"]
    if cpus >= 4:
        assert timing["best_speedup"] >= 2.0
    elif cpus >= 2:
        assert timing["best_speedup"] >= 1.3
    else:
        # Single CPU: no parallelism to be had, so the speedup assertion
        # is skipped *visibly* — but the pool path must still be cheap
        # (fork + chunk dispatch + JSON-bytes transfer, no silent 0.5x).
        print("  NOTICE: <2 CPUs — speedup assertion skipped "
              "(parallelism unmeasurable on one core)")
        assert timing["best_speedup"] >= 0.5
