"""Paper-scale runs (opt-in).

The ``"paper"`` preset in :data:`repro.harness.experiments.SCALES` keeps
the published op counts (4,000 writes per client, 96 Tile-IO clients,
80-node VPIC...).  A full paper-scale sweep simulates hundreds of
millions of events and takes hours — far beyond a CI budget — so these
benches are skipped unless explicitly requested:

    REPRO_PAPER_SCALE=1 pytest benchmarks/test_bench_paper_scale.py \
        --benchmark-only -s

The subset below (Table III and Fig. 17) is the cheapest paper-scale
slice that still exercises the full-size contention chains.
"""

import os

import pytest

paper = pytest.mark.skipif(
    not os.environ.get("REPRO_PAPER_SCALE"),
    reason="paper-scale runs are opt-in (set REPRO_PAPER_SCALE=1)")


@paper
def test_bench_table3_paper_scale(run_exp):
    res = run_exp("table3", scale="paper")
    bws = [row["_bw"] for row in res.rows]
    ref = bws[0]
    for val in bws:
        assert abs(val - ref) < 0.15 * ref


@paper
def test_bench_fig17_paper_scale(run_exp):
    res = run_exp("fig17", scale="paper")
    for xfer in ("16K", "64K", "256K", "1024K"):
        pw = res.row_lookup(mode="PW", xfer=xfer)
        # The paper's 67.9-69.3% band tightens at full op counts.
        share = (pw["_rev"] + pw["_cancel"]) / pw["_total"]
        assert share > 0.5, (xfer, share)
