"""Bench: Fig. 17 — time breakdown of the fully conflicting sequence.

Shape: under PW the lock conflict resolution (revocation + cancel)
dominates the total time (the paper measures 67.9–69.3 %), grows with
the write size, and is dominated by the cancel (flush) part; under NBW
early grant collapses the total.
"""


def test_bench_fig17(run_exp):
    res = run_exp("fig17")
    for xfer in ("16K", "64K", "256K", "1024K"):
        pw = res.row_lookup(mode="PW", xfer=xfer)
        nbw = res.row_lookup(mode="NBW", xfer=xfer)
        # Conflict resolution dominates PW...
        assert (pw["_rev"] + pw["_cancel"]) > 0.5 * pw["_total"], xfer
        # ...and within it the cancel (flush) part dominates revocation.
        assert pw["_cancel"] > pw["_rev"], xfer
        # NBW total is far below PW at every size.
        assert nbw["_total"] < pw["_total"] / 2, xfer
    # PW total grows with write size (flush time scales with X).
    pw_16 = res.row_lookup(mode="PW", xfer="16K")["_total"]
    pw_1m = res.row_lookup(mode="PW", xfer="1024K")["_total"]
    assert pw_1m > pw_16
