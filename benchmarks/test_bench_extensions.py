"""Bench: extension experiments (client scaling, two-phase read-back).

Not in the paper's figures; these probe the adjacent questions the
paper's 96-client deployment raises and pin the answers as shapes.
"""

from benchmarks.conftest import bw


def test_bench_ext_client_scaling(run_exp):
    res = run_exp("ext_scaling")
    for clients in (4, 8, 16, 32):
        seq = bw(res.row_lookup(clients=clients, DLM="seqdlm"))
        basic = bw(res.row_lookup(clients=clients, DLM="dlm-basic"))
        assert seq > 1.5 * basic, clients
    # SeqDLM aggregates with client count...
    seq4 = bw(res.row_lookup(clients=4, DLM="seqdlm"))
    seq32 = bw(res.row_lookup(clients=32, DLM="seqdlm"))
    assert seq32 > 2 * seq4
    # ...while the traditional DLM's conflict chain stays pinned.
    b4 = bw(res.row_lookup(clients=4, DLM="dlm-basic"))
    b32 = bw(res.row_lookup(clients=32, DLM="dlm-basic"))
    assert b32 < 2 * b4


def test_bench_ext_read_phase(run_exp):
    res = run_exp("ext_read_phase")
    rows = {r["DLM"]: r for r in res.rows}
    # Write phase: SeqDLM wins.
    assert rows["seqdlm"]["_wbw"] > 2 * rows["dlm-basic"]["_wbw"]
    # Read phase: all DLMs within a few percent (PR semantics identical).
    ref = rows["dlm-basic"]["_rbw"]
    for dlm, row in rows.items():
        assert abs(row["_rbw"] - ref) < 0.1 * ref, dlm
