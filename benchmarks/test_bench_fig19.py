"""Bench: Fig. 19 — automatic lock conversion.

Shape (paper): (a) interleaved reads/writes — NBW with upgrading matches
PW (one conversion then pure cache hits) while NBW without upgrading
thrashes on self-conflicts; (b) two-stripe spanning writes — BW with
downgrading beats both BW-without-downgrading and PW (2.48x at 64 KB,
9.4x at 1 MB in the paper).
"""

from benchmarks.conftest import thr


def test_bench_fig19_upgrading(run_exp):
    res = run_exp("fig19")
    pw = thr(res.row_lookup(test="upgrading (a)", config="PW"))
    up = thr(res.row_lookup(test="upgrading (a)", config="NBW+U"))
    no_up = thr(res.row_lookup(test="upgrading (a)", config="NBW-U"))
    # With upgrading, NBW converges to PW-like throughput...
    assert up > 0.5 * pw, (up, pw)
    # ...without it, self-conflicts make it far slower.
    assert no_up < up / 2, (no_up, up)


def test_bench_fig19_downgrading(run_exp):
    res = run_exp("fig19")
    for xfer in ("64K", "1024K"):
        bwd = thr(res.row_lookup(test="downgrading (b)", config="BW+D",
                                 xfer=xfer))
        bw_no_d = thr(res.row_lookup(test="downgrading (b)", config="BW-D",
                                     xfer=xfer))
        pw = thr(res.row_lookup(test="downgrading (b)", config="PW",
                                xfer=xfer))
        assert bwd > 1.5 * bw_no_d, (xfer, bwd, bw_no_d)
        assert bwd > 1.5 * pw, (xfer, bwd, pw)
        # Without conversion, BW and PW behave alike (both blocking).
        assert abs(bw_no_d - pw) < 0.5 * max(bw_no_d, pw)
