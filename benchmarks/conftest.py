"""Shared machinery for the benchmark suite.

Each ``test_bench_*`` module regenerates one table/figure of the paper:
it runs the corresponding harness experiment under pytest-benchmark
(one round — the experiment itself is the deterministic measurement; the
benchmark clock captures the harness cost), prints the paper-style
table, and asserts the *shape* of the result (who wins, direction of
trends, rough factors) — absolute numbers live in EXPERIMENTS.md.
"""

import pytest

from repro.harness import run_experiment, run_sweep


@pytest.fixture
def run_exp(benchmark):
    """Run a harness experiment once under the benchmark clock, print
    its table, and hand the result to the caller for shape assertions."""

    def _run(exp_id: str, scale: str = "small"):
        result = benchmark.pedantic(run_experiment, args=(exp_id, scale),
                                    rounds=1, iterations=1)
        print()
        print(result.render())
        return result

    return _run


@pytest.fixture
def run_cells(benchmark):
    """Run a list of :class:`~repro.harness.sweep.SweepCell` under the
    benchmark clock, fanned across ``REPRO_SWEEP_JOBS`` worker processes
    (default: one per CPU; results are byte-identical regardless)."""
    import os

    def _run(cells, jobs=None):
        if jobs is None:
            jobs = int(os.environ.get("REPRO_SWEEP_JOBS", "0")) \
                or (os.cpu_count() or 1)
        return benchmark.pedantic(run_sweep, args=(cells,),
                                  kwargs={"jobs": jobs},
                                  rounds=1, iterations=1)

    return _run


def bw(row) -> float:
    return row["_bw"]


def thr(row) -> float:
    return row["_thr"]
