"""Bench: Fig. 18 — lock-resource throughput under contention.

Shape (paper): NBW (early grant) beats PW by a growing factor with write
size (4.26x at 64 KB, 30x at 1 MB without ER; 12.9x / 40x with ER);
early revocation helps NBW but not PW; the locking/IO ratio of NBW
falls as the write size grows.
"""

from benchmarks.conftest import thr


def test_bench_fig18(run_exp):
    res = run_exp("fig18")
    for xfer in ("64K", "1024K"):
        pw = thr(res.row_lookup(config="PW", xfer=xfer))
        pw_no_er = thr(res.row_lookup(config="PW no-ER", xfer=xfer))
        nbw = thr(res.row_lookup(
            config="NBW no-ER (early grant only)", xfer=xfer))
        nbw_er = thr(res.row_lookup(config="NBW+ER", xfer=xfer))
        # Early grant alone is a clear win over PW.
        assert nbw > 2 * pw, (xfer, nbw, pw)
        # Early revocation must not help PW (PW never early-grants).
        assert abs(pw - pw_no_er) < 0.25 * pw, (pw, pw_no_er)
    # Early revocation adds on top of early grant where revoke round
    # trips dominate (small writes); at 1 MB both variants are bound by
    # the client cache speed, so ER is within noise of plain early grant.
    assert thr(res.row_lookup(config="NBW+ER", xfer="64K")) > \
        1.2 * thr(res.row_lookup(config="NBW no-ER (early grant only)",
                                 xfer="64K"))
    assert thr(res.row_lookup(config="NBW+ER", xfer="1024K")) > \
        0.75 * thr(res.row_lookup(config="NBW no-ER (early grant only)",
                                  xfer="1024K"))
    # The PW->NBW gap widens with write size (flush cost scales with X).
    gap_64 = (thr(res.row_lookup(config="NBW+ER", xfer="64K"))
              / thr(res.row_lookup(config="PW", xfer="64K")))
    gap_1m = (thr(res.row_lookup(config="NBW+ER", xfer="1024K"))
              / thr(res.row_lookup(config="PW", xfer="1024K")))
    assert gap_1m > gap_64, (gap_64, gap_1m)
