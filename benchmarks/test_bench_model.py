"""Bench: §II-C analytical model (Table I, Equations 1/2).

Paper claims pinned here: for D = 1 MB, ① ≈ 1e-13 s/B, ② ≈ 1e-12 s/B,
③ ≈ 4.1e-10 s/B, so data flushing dominates at every size, and B_total
is pinned near B_flush ≈ 2.42 GB/s.
"""

from repro.analysis.model import TABLE1, flush_bandwidth, terms


def test_bench_model(run_exp):
    res = run_exp("model")
    # Flushing dominates at every write size.
    for row in res.rows:
        assert "flushing" in row["bottleneck"]
    # The paper's 1 MB term values.
    t1, t2, t3 = terms(1_000_000)
    assert 0.5e-13 < t1 < 2e-13
    assert 0.5e-12 < t2 < 2e-12
    assert 3e-10 < t3 < 5e-10
    assert abs(flush_bandwidth(TABLE1) - 2.42e9) < 0.05e9
