"""Bench: additional ablations beyond the paper's figures.

* ``ablation_rmw`` — §III-B2: ccPFS's sub-page SN extents vs the
  conventional partial-page read-modify-write for the unaligned
  IO500-hard write size.  RMW turns every unaligned write into an
  implicit read (PW) and collapses throughput.
* lock-server OPS sensitivity — quantifies the EXPERIMENTS.md deviation
  note: the 64 KB strided SeqDLM point is pinned by the modelled
  213 kOPS dispatch rate; raising OPS moves it toward the paper's
  81.7 %-of-segmented figure.
"""

from benchmarks.conftest import bw
from repro.pfs import ClusterConfig
from repro.workloads import IorConfig, run_ior


def test_bench_ablation_rmw(run_exp):
    res = run_exp("ablation_rmw")
    subpage = res.row_lookup(config="sub-page extents (NBW)")
    rmw = res.row_lookup(config="page RMW (PW + sync reads)")
    assert bw(subpage) > 5 * bw(rmw)
    assert subpage["_reads"] == 0          # never reads
    assert rmw["_reads"] > 0               # every unaligned write reads


def test_bench_lock_ops_sensitivity(benchmark):
    """SeqDLM strided bandwidth at 64 KB as a function of the lock
    server's dispatch rate: monotone in OPS, demonstrating the dispatch
    pin at the paper's measured 213 kOPS."""

    def sweep():
        out = {}
        for ops in (100_000.0, 213_000.0, 1_000_000.0):
            r = run_ior(IorConfig(
                pattern="n1-strided", clients=16, writes_per_client=96,
                xfer=64 * 1024, stripes=1,
                cluster=ClusterConfig(dlm="seqdlm", num_data_servers=1,
                                      content_mode="off", dlm_ops=ops)))
            out[ops] = r.bandwidth
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for ops, val in out.items():
        print(f"  dlm_ops={ops:>12,.0f}  ->  {val / 1e9:6.2f} GB/s")
    assert out[213_000.0] > out[100_000.0]
    assert out[1_000_000.0] > 1.5 * out[213_000.0], \
        "64K strided SeqDLM should be dispatch-bound at 213 kOPS"
