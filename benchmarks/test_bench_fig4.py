"""Bench: Fig. 4 — the motivating IO-pattern gap on a traditional DLM.

Shape: N-N and N-1 segmented are fast (cache-bound, growing with write
size); N-1 strided is far slower at every size — the high-contention gap
that motivates SeqDLM.
"""

from benchmarks.conftest import bw


def test_bench_fig4(run_exp):
    res = run_exp("fig4")
    for xfer in ("16K", "64K", "256K", "1024K"):
        nn = bw(res.row_lookup(pattern="n-n", xfer=xfer))
        seg = bw(res.row_lookup(pattern="n1-segmented", xfer=xfer))
        strided = bw(res.row_lookup(pattern="n1-strided", xfer=xfer))
        # The gap: strided is several times slower than both others.
        assert strided < seg / 2, (xfer, strided, seg)
        assert strided < nn / 2, (xfer, strided, nn)
    # N-N and segmented approach the cache plateau at larger sizes.
    assert bw(res.row_lookup(pattern="n-n", xfer="1024K")) > \
        bw(res.row_lookup(pattern="n-n", xfer="16K"))
