"""Bench: SeqDLM vs Lustre-style lockahead (the paper's [12]).

Shape: on disjoint strided IO the two schools are comparable (lockahead
avoids conflicts, SeqDLM makes them cheap); on overlapping IO lockahead
collapses back to a conflict chain while SeqDLM is unaffected — the
paper's §I argument for attacking conflict *resolution cost* instead of
conflict *count*.
"""

from benchmarks.conftest import bw


def test_bench_ext_lockahead(run_exp):
    res = run_exp("ext_lockahead")

    la_disjoint = bw(res.row_lookup(workload="disjoint strided",
                                    approach="lockahead (precise locks)"))
    seq_disjoint = bw(res.row_lookup(workload="disjoint strided",
                                     approach="SeqDLM"))
    trad_disjoint = bw(res.row_lookup(
        workload="disjoint strided",
        approach="traditional (expanded locks)"))
    # Both schools crush the expanded-lock baseline on disjoint IO...
    assert la_disjoint > 3 * trad_disjoint
    assert seq_disjoint > 3 * trad_disjoint
    # ...and land in the same league as each other.
    assert 0.5 < la_disjoint / seq_disjoint < 2.0

    la_overlap = bw(res.row_lookup(workload="overlapping",
                                   approach="lockahead (precise locks)"))
    seq_overlap = bw(res.row_lookup(workload="overlapping",
                                    approach="SeqDLM"))
    # Overlap kills lockahead but not SeqDLM.
    assert seq_overlap > 3 * la_overlap
    assert seq_overlap > 0.8 * seq_disjoint
