"""Bench: Fig. 23 — Tile-IO, SeqDLM vs DLM-datatype.

Shape (paper): despite taking coarser (minimum covering range) locks
that conflict more, SeqDLM beats DLM-datatype at every stripe count
(51x at 1 stripe down to 4.1x at 16 in the paper), because conflict
resolution no longer waits for data flushing.  The gap narrows as more
stripes spread the contention.
"""

from benchmarks.conftest import bw


def test_bench_fig23(run_exp):
    res = run_exp("fig23")
    gaps = {}
    for stripes in (1, 4, 16):
        seq = bw(res.row_lookup(stripes=stripes, DLM="seqdlm"))
        dt = bw(res.row_lookup(stripes=stripes, DLM="dlm-datatype"))
        assert seq > 2 * dt, (stripes, seq, dt)
        gaps[stripes] = seq / dt
    # The advantage is largest on a single stripe (max contention).
    assert gaps[1] >= gaps[16], gaps
